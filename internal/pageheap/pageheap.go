package pageheap

import (
	"errors"
	"fmt"
	"math"

	"wsmalloc/internal/check"
	"wsmalloc/internal/mem"
	"wsmalloc/internal/telemetry"
)

// Config controls pageheap behaviour.
type Config struct {
	// LifetimeAware enables the paper's lifetime-aware hugepage filler:
	// short-lived spans are packed on a dedicated hugepage set (§4.4).
	LifetimeAware bool
	// MaxHugeCacheBytes bounds the HugeCache (0 = unbounded).
	MaxHugeCacheBytes int64
	// SubreleaseDensityLimit protects hugepages above this allocation
	// density from subrelease (skip-subrelease, Maas et al.). Zero means
	// the default of 0.7.
	SubreleaseDensityLimit float64
}

// DefaultConfig returns the baseline configuration (lifetime-aware filler
// off, 256 MiB hugepage cache).
func DefaultConfig() Config {
	return Config{MaxHugeCacheBytes: 1 << 30, SubreleaseDensityLimit: 0.7}
}

type placementKind uint8

const (
	placeFiller placementKind = iota
	placeRegion
	placeCache
	placeDonated
)

type placement struct {
	kind     placementKind
	pages    int
	lifetime Lifetime
	// hugepages and tailUsed describe placeDonated/placeCache layouts.
	hugepages int
	tailUsed  int
}

// PageHeap is the hugepage-aware back-end: it routes span allocations to
// the HugeFiller, HugeRegion, or HugeCache exactly as TCMalloc's
// HugePageAwareAllocator does, and implements the gradual release policy.
type PageHeap struct {
	os      *mem.OS
	cfg     Config
	fillers [numLifetimes]*Filler
	region  *HugeRegion
	cache   *HugeCache

	live map[mem.PageID]placement

	// largeUsedPages tracks pages used by cache-backed large allocations
	// (excluding donated tails, which the filler accounts).
	largeUsedPages int64

	allocs, frees int64

	// Graceful-degradation counters for the fault-injection harness.
	pressureEvents        int64
	pressureReleasedBytes int64
	oomFailures           int64

	tel *telemetry.Sink
}

// SetTelemetry installs the telemetry sink on the heap and its fillers
// (nil disables).
func (p *PageHeap) SetTelemetry(s *telemetry.Sink) {
	p.tel = s
	for _, f := range p.fillers {
		f.SetTelemetry(s)
	}
}

// SetClock installs the virtual-time source on the heap's components so
// free spans can be timestamped for the pageheapz age histograms.
func (p *PageHeap) SetClock(fn func() int64) {
	for _, f := range p.fillers {
		f.SetClock(fn)
	}
	p.cache.SetClock(fn)
}

// New creates a pageheap over the simulated OS.
func New(o *mem.OS, cfg Config) *PageHeap {
	p := &PageHeap{
		os:   o,
		cfg:  cfg,
		// Sized for the thousands of concurrently-live placements a
		// steady-state machine holds, so the hot Alloc path is not
		// repeatedly growing (and rehashing) the table from scratch.
		live: make(map[mem.PageID]placement, 4096),
	}
	p.cache = NewHugeCache(o, cfg.MaxHugeCacheBytes)
	p.region = NewHugeRegion(o, func(start mem.HugePageID, n int) { p.cache.Free(start, n) })
	for i := range p.fillers {
		p.fillers[i] = NewFiller(o, func(h mem.HugePageID) { p.cache.Free(h, 1) })
	}
	return p
}

// fillerFor selects the filler set for a lifetime class.
func (p *PageHeap) fillerFor(lt Lifetime) *Filler {
	if !p.cfg.LifetimeAware {
		return p.fillers[LifetimeLong]
	}
	return p.fillers[lt]
}

// Swap retunes the heap to a new configuration mid-run. Live placements
// are unaffected — each one recorded the filler that actually owns its
// pages — so only future allocations see the new lifetime policy, while
// the hugepage cache re-trims immediately to the new bound. A Swap on a
// freshly constructed heap is indistinguishable from construction with
// cfg.
func (p *PageHeap) Swap(cfg Config) {
	p.cfg = cfg
	p.cache.setBound(cfg.MaxHugeCacheBytes)
}

// Alloc obtains pages contiguous TCMalloc pages. lt classifies the
// expected span lifetime (ignored unless the lifetime-aware filler is
// enabled). The returned range is tracked until freed with Free.
//
// Allocation failure (an injected fault or an exhausted memory budget in
// the simulated OS) is a first-class outcome: on the first ErrNoMemory
// the heap sheds every byte it can spare — the whole hugepage cache, then
// subrelease of all free filler pages with the skip-subrelease density
// limit suspended — and retries once before surfacing the error.
func (p *PageHeap) Alloc(pages int, lt Lifetime) (mem.PageID, error) {
	if pages <= 0 {
		panic(fmt.Sprintf("pageheap: alloc of %d pages", pages))
	}
	start, pl, err := p.place(pages, lt)
	if err != nil {
		if errors.Is(err, mem.ErrNoMemory) {
			p.releaseUnderPressure()
			start, pl, err = p.place(pages, lt)
		}
		if err != nil {
			p.oomFailures++
			return 0, err
		}
	}
	p.allocs++
	if _, dup := p.live[start]; dup {
		panic(fmt.Sprintf("pageheap: duplicate allocation at page %#x", start.Addr()))
	}
	p.live[start] = pl
	return start, nil
}

// place routes one allocation to a back-end without the pressure retry.
func (p *PageHeap) place(pages int, lt Lifetime) (mem.PageID, placement, error) {
	if pages < mem.PagesPerHugePage {
		start, err := p.allocFiller(pages, lt)
		if !p.cfg.LifetimeAware {
			// Record the filler the span actually lives in, not the raw
			// classification: Free must route back to the same filler even
			// if a mid-run Swap toggles lifetime awareness later.
			lt = LifetimeLong
		}
		return start, placement{kind: placeFiller, pages: pages, lifetime: lt}, err
	}
	huges := (pages + mem.PagesPerHugePage - 1) / mem.PagesPerHugePage
	slack := huges*mem.PagesPerHugePage - pages
	switch {
	case slack == 0:
		h, err := p.cache.Alloc(huges)
		if err != nil {
			return 0, placement{}, err
		}
		p.largeUsedPages += int64(pages)
		return h.FirstPage(), placement{kind: placeCache, pages: pages, hugepages: huges}, nil
	case huges <= 2 && slack >= mem.PagesPerHugePage/4:
		// Slightly exceeding a hugepage with substantial slack: pack
		// into a shared region so slack overlaps (e.g. the paper's
		// 2.1 MiB example).
		start, err := p.region.Alloc(pages)
		if err != nil {
			return 0, placement{}, err
		}
		return start, placement{kind: placeRegion, pages: pages}, nil
	default:
		// Whole hugepages plus a tail remainder donated to the
		// filler (e.g. 4.5 MiB donates 1.5 MiB of slack).
		h, err := p.cache.Alloc(huges)
		if err != nil {
			return 0, placement{}, err
		}
		tailUsed := pages - (huges-1)*mem.PagesPerHugePage
		p.fillers[LifetimeLong].AddDonated(h+mem.HugePageID(huges-1), tailUsed)
		p.largeUsedPages += int64((huges - 1) * mem.PagesPerHugePage)
		return h.FirstPage(), placement{kind: placeDonated, pages: pages, hugepages: huges, tailUsed: tailUsed}, nil
	}
}

func (p *PageHeap) allocFiller(pages int, lt Lifetime) (mem.PageID, error) {
	f := p.fillerFor(lt)
	if start, ok := f.Alloc(pages); ok {
		return start, nil
	}
	h, err := p.cache.Alloc(1)
	if err != nil {
		return 0, err
	}
	f.AddHugePage(h)
	start, ok := f.Alloc(pages)
	if !ok {
		panic("pageheap: fresh hugepage cannot satisfy sub-hugepage allocation")
	}
	return start, nil
}

// releaseUnderPressure sheds every releasable byte: the whole hugepage
// cache plus subrelease of all free filler pages, ignoring the
// skip-subrelease density limit. Breaking dense hugepages costs TLB
// benefit, but under memory pressure staying alive beats staying fast.
func (p *PageHeap) releaseUnderPressure() int64 {
	p.pressureEvents++
	released := p.cache.ReleaseAll()
	for _, f := range p.fillers {
		released += int64(f.ReleasePages(math.MaxInt32, 1.0)) * mem.PageSize
	}
	p.pressureReleasedBytes += released
	p.tel.Event(telemetry.EvHeapPressure, released, 0)
	return released
}

// Free returns a range previously obtained from Alloc.
func (p *PageHeap) Free(start mem.PageID, pages int) {
	pl, ok := p.live[start]
	if !ok {
		panic(fmt.Sprintf("pageheap: free of untracked range at page %#x", start.Addr()))
	}
	if pl.pages != pages {
		panic(fmt.Sprintf("pageheap: free of %d pages, allocated %d", pages, pl.pages))
	}
	delete(p.live, start)
	p.frees++
	switch pl.kind {
	case placeFiller:
		// The placement carries the effective lifetime (collapsed to
		// LifetimeLong when the span was placed without lifetime
		// awareness), so this routes to the filler that owns the pages
		// regardless of the configuration now in force.
		p.fillers[pl.lifetime].Free(start, pages)
	case placeRegion:
		p.region.Free(start, pages)
	case placeCache:
		p.cache.Free(start.HugePage(), pl.hugepages)
		p.largeUsedPages -= int64(pages)
	case placeDonated:
		lead := pl.hugepages - 1
		p.cache.Free(start.HugePage(), lead)
		tail := start.HugePage() + mem.HugePageID(lead)
		p.fillers[LifetimeLong].Free(tail.FirstPage(), pl.tailUsed)
		p.largeUsedPages -= int64(lead * mem.PagesPerHugePage)
	}
}

// ReleaseAtLeast releases at least want bytes back to the OS when
// possible: first whole free hugepages from the cache (coverage
// preserving), then subrelease from the sparsest filler hugepages. It
// returns the bytes actually released.
func (p *PageHeap) ReleaseAtLeast(want int64) int64 {
	released := p.cache.ReleaseAtLeast(want)
	limit := p.cfg.SubreleaseDensityLimit
	if limit == 0 {
		limit = 0.7
	}
	if released < want && p.cfg.LifetimeAware {
		// Break short-lifetime hugepages first: they drain and unmap
		// whole soon, so the damage is transient, while a broken
		// long-lifetime hugepage loses its TLB benefit indefinitely.
		pages := int((want - released + mem.PageSize - 1) / mem.PageSize)
		released += int64(p.fillers[LifetimeShort].ReleasePages(pages, limit)) * mem.PageSize
	}
	if released < want {
		pages := int((want - released + mem.PageSize - 1) / mem.PageSize)
		released += int64(p.fillers[LifetimeLong].ReleasePages(pages, limit)) * mem.PageSize
	}
	return released
}

// Stats aggregates pageheap telemetry; the per-component split feeds
// Fig. 15 and the coverage number feeds Fig. 17a.
type Stats struct {
	// Per-component in-use bytes.
	FillerUsed, RegionUsed, LargeUsed int64
	// Per-component mapped-but-free bytes (external fragmentation).
	FillerFree, RegionFree, CacheFree int64
	// Subreleased bytes still inside filler hugepages.
	FillerReleased int64
	// UsedBytes and FreeBytes are component totals.
	UsedBytes, FreeBytes int64
	// HugepageCoverage is the fraction of in-use bytes backed by intact
	// hugepages.
	HugepageCoverage float64
	// Allocs and Frees count pageheap operations.
	Allocs, Frees int64
	// Cache hit statistics.
	CacheHits, CacheMisses int64
	// PressureEvents counts OOM-triggered emergency release passes;
	// PressureReleasedBytes is what they shed. OOMFailures counts Alloc
	// calls that still failed after the pressure retry.
	PressureEvents        int64
	PressureReleasedBytes int64
	OOMFailures           int64
}

// Stats computes a snapshot.
func (p *PageHeap) Stats() Stats {
	var fUsed, fFree, fReleased, fIntact int64
	for _, f := range p.fillers {
		fs := f.Stats()
		fUsed += fs.UsedBytes
		fFree += fs.FreeBytes
		fReleased += fs.ReleasedBytes
		fIntact += fs.UsedOnIntact
	}
	rs := p.region.Stats()
	cs := p.cache.Stats()
	s := Stats{
		FillerUsed:     fUsed,
		RegionUsed:     rs.UsedBytes,
		LargeUsed:      p.largeUsedPages * mem.PageSize,
		FillerFree:     fFree,
		RegionFree:     rs.FreeBytes,
		CacheFree:      cs.CachedBytes,
		FillerReleased: fReleased,
		Allocs:         p.allocs,
		Frees:          p.frees,
		CacheHits:      cs.Hits,
		CacheMisses:    cs.Misses,

		PressureEvents:        p.pressureEvents,
		PressureReleasedBytes: p.pressureReleasedBytes,
		OOMFailures:           p.oomFailures,
	}
	s.UsedBytes = s.FillerUsed + s.RegionUsed + s.LargeUsed
	s.FreeBytes = s.FillerFree + s.RegionFree + s.CacheFree
	// Regions and cache-backed large allocations never subrelease, so
	// their used bytes are always hugepage-backed.
	intact := fIntact + s.RegionUsed + s.LargeUsed
	if s.UsedBytes > 0 {
		s.HugepageCoverage = float64(intact) / float64(s.UsedBytes)
	}
	return s
}

// Allocs returns the cumulative pageheap allocation count in O(1). It
// always equals Stats().Allocs; the hot CFL-refill accounting reads it
// per batch, so it must not touch any per-component state.
func (p *PageHeap) Allocs() int64 { return p.allocs }

// Fillers exposes the filler set for white-box telemetry (tests and the
// experiment harness).
func (p *PageHeap) Fillers() []*Filler {
	return []*Filler{p.fillers[LifetimeLong], p.fillers[LifetimeShort]}
}

// LiveRanges returns the number of outstanding allocations.
func (p *PageHeap) LiveRanges() int { return len(p.live) }

// CheckInvariants audits every back-end tier plus the simulated OS, then
// verifies byte conservation across them: each mapped byte must be
// accounted by exactly one tier, so filler used+free, region used+free,
// cached bytes and cache-backed large allocations must sum to exactly the
// OS's mapped bytes. It also recounts live placements against the
// per-tier used-byte totals.
func (p *PageHeap) CheckInvariants() []check.Violation {
	var vs []check.Violation
	for _, f := range p.fillers {
		vs = append(vs, f.CheckInvariants()...)
	}
	vs = append(vs, p.region.CheckInvariants()...)
	vs = append(vs, p.cache.CheckInvariants()...)
	vs = append(vs, p.os.CheckInvariants()...)

	s := p.Stats()
	accounted := s.FillerUsed + s.FillerFree + s.RegionUsed + s.RegionFree +
		s.CacheFree + s.LargeUsed
	if mapped := p.os.MappedBytes(); accounted != mapped {
		vs = append(vs, check.Violationf("pageheap", check.KindConservation,
			"tiers account for %d bytes but the OS has %d mapped (drift %+d)",
			accounted, mapped, accounted-mapped))
	}

	var livePages int64
	for start, pl := range p.live {
		if pl.pages <= 0 {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"live placement at page %#x spans %d pages", start.Addr(), pl.pages))
		}
		livePages += int64(pl.pages)
	}
	if liveBytes := livePages * mem.PageSize; liveBytes != s.UsedBytes {
		vs = append(vs, check.Violationf("pageheap", check.KindConservation,
			"live placements total %d bytes but tiers report %d used",
			liveBytes, s.UsedBytes))
	}
	return vs
}
