package pageheap

import (
	"math"
	"strings"
	"testing"

	"wsmalloc/internal/mem"
)

// The RLE occupancy map must render exact U/F/R runs for a hugepage
// with a known hole pattern, including subreleased pages.
func TestRLEOccupancy(t *testing.T) {
	o, f, _ := newTestFiller(t)
	h := mustMap(o, 1)
	f.AddHugePage(h)

	p, ok := f.Alloc(24)
	if !ok {
		t.Fatal("alloc failed")
	}
	tr := f.byID[h]
	if got := rleOccupancy(tr); got != "U24F232" {
		t.Fatalf("fresh RLE = %q", got)
	}

	// Punch a hole in the middle: pages 8..15 free.
	f.Free(p+8, 8)
	if got := rleOccupancy(tr); got != "U8F8U8F232" {
		t.Fatalf("holey RLE = %q", got)
	}

	// Subrelease every free page (density 16/256 is far below 1.0).
	if n := f.ReleasePages(mem.PagesPerHugePage, 1.0); n != 240 {
		t.Fatalf("released %d pages, want 240", n)
	}
	if got := rleOccupancy(tr); got != "U8R8U8R232" {
		t.Fatalf("released RLE = %q", got)
	}
	if tr.usedCount != 16 || tr.releasedCount != 240 {
		t.Fatalf("counts used=%d released=%d", tr.usedCount, tr.releasedCount)
	}
	if o.IsIntact(h) {
		t.Fatal("hugepage still intact after subrelease")
	}
}

// AgeHistogram decade bucketing: boundary values land in the right
// buckets and negative/overflow ages clamp instead of vanishing.
func TestAgeHistogramBuckets(t *testing.T) {
	var h AgeHistogram
	h.Add(-5, 1)  // clamps to 0
	h.Add(999, 2) // still underflow bucket
	h.Add(1000, 3)
	h.Add(9_999, 4)
	h.Add(10_000, 5)
	h.Add(int64(1e16), 7)
	h.Add(math.MaxInt64, 11) // clamps into the top bucket

	got := h.Buckets()
	want := []AgeBucket{
		{LoNs: 0, HiNs: 1_000, Count: 3},
		{LoNs: 1_000, HiNs: 10_000, Count: 7},
		{LoNs: 10_000, HiNs: 100_000, Count: 5},
		{LoNs: int64(1e16), HiNs: int64(1e17), Count: 18},
	}
	if len(got) != len(want) {
		t.Fatalf("buckets = %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Introspect must agree with Stats() on every byte total, keep its
// hugepage list address-sorted, and attribute free-span ages from the
// virtual clock.
func TestIntrospectMatchesStats(t *testing.T) {
	o := mem.NewOS()
	p := New(o, DefaultConfig())
	now := int64(0)
	p.SetClock(func() int64 { return now })

	// A few filler spans, a hole, and a multi-hugepage allocation that
	// lands in the region and later populates the hugecache.
	spans := make([]mem.PageID, 0, 8)
	for i := 0; i < 6; i++ {
		pg, err := p.Alloc(40, LifetimeLong)
		if err != nil {
			t.Fatal(err)
		}
		spans = append(spans, pg)
	}
	big, err := p.Alloc(3*mem.PagesPerHugePage, LifetimeLong)
	if err != nil {
		t.Fatal(err)
	}
	now = 5_000
	p.Free(spans[1], 40) // filler hole, freed at t=5000
	now = 20_000
	p.Free(big, 3*mem.PagesPerHugePage) // hugecache range, freed at t=20000
	now = 1_000_000

	z := p.Introspect(now)
	s := p.Stats()
	if z.NowNs != now {
		t.Fatalf("NowNs = %d", z.NowNs)
	}
	if z.FillerUsedBytes != s.FillerUsed || z.FillerFreeBytes != s.FillerFree ||
		z.FillerReleasedBytes != s.FillerReleased {
		t.Fatalf("filler bytes: introspect (%d,%d,%d) vs stats (%d,%d,%d)",
			z.FillerUsedBytes, z.FillerFreeBytes, z.FillerReleasedBytes,
			s.FillerUsed, s.FillerFree, s.FillerReleased)
	}
	if z.RegionUsedBytes != s.RegionUsed || z.SlackBytes != s.RegionFree ||
		z.LargeUsedBytes != s.LargeUsed || z.CacheFreeBytes != s.CacheFree {
		t.Fatal("region/large/cache bytes disagree with Stats")
	}

	// Per-hugepage page counts must cover every tracked hugepage exactly.
	var used, free, released int64
	for i, hp := range z.HugePages {
		if hp.UsedPages+hp.FreePages+hp.ReleasedPages != mem.PagesPerHugePage {
			t.Fatalf("hugepage %#x pages don't sum to %d: %+v", hp.Addr, mem.PagesPerHugePage, hp)
		}
		if i > 0 && z.HugePages[i-1].Addr >= hp.Addr {
			t.Fatal("hugepages not address-sorted")
		}
		used += int64(hp.UsedPages)
		free += int64(hp.FreePages)
		released += int64(hp.ReleasedPages)
	}
	if used*mem.PageSize != s.FillerUsed || free*mem.PageSize != s.FillerFree ||
		released*mem.PageSize != s.FillerReleased {
		t.Fatal("per-hugepage sums disagree with filler stats")
	}

	// The freed filler span ages from t=5000: age 995000 ns, bucket
	// [1e5, 1e6). The cached hugepages age from t=20000: 980000 ns,
	// same decade. Total mapped-but-free pages must all be histogrammed.
	var histPages int64
	for _, b := range z.FreeSpanAges {
		histPages += b.Count
	}
	wantPages := (s.FillerFree + s.CacheFree) / mem.PageSize
	if histPages != wantPages {
		t.Fatalf("free-span histogram covers %d pages, want %d", histPages, wantPages)
	}
	foundFiller := false
	for _, hp := range z.HugePages {
		if hp.FreePages > 0 && hp.FreeAgeNs == now-5_000 {
			foundFiller = true
		}
	}
	if !foundFiller {
		t.Fatal("no hugepage carries the t=5000 free age")
	}
	if len(z.CacheRanges) == 0 {
		t.Fatal("hugecache ranges missing")
	}
	var cachePages int64
	for _, r := range z.CacheRanges {
		if r.FreeAgeNs != now-20_000 {
			t.Fatalf("cache range age = %d, want %d", r.FreeAgeNs, now-20_000)
		}
		cachePages += int64(r.HugePages) * mem.PagesPerHugePage
	}
	if cachePages*mem.PageSize != s.CacheFree {
		t.Fatalf("cache range pages %d vs CacheFree %d", cachePages*mem.PageSize, s.CacheFree)
	}
}

// Two introspections of the same heap state must render byte-identical
// text (the /pageheapz page is part of the deterministic export set).
func TestWriteIntrospectionDeterministic(t *testing.T) {
	build := func() string {
		o := mem.NewOS()
		p := New(o, DefaultConfig())
		p.SetClock(func() int64 { return 42 })
		var pgs []mem.PageID
		for i := 0; i < 5; i++ {
			pg, err := p.Alloc(30+i, LifetimeLong)
			if err != nil {
				t.Fatal(err)
			}
			pgs = append(pgs, pg)
		}
		p.Free(pgs[2], 32)
		var b strings.Builder
		if err := WriteIntrospection(&b, p.Introspect(10_000)); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	r1, r2 := build(), build()
	if r1 != r2 {
		t.Fatal("introspection text not byte-stable")
	}
	for _, want := range []string{"PAGEHEAP introspection @ 10000 virtual ns", "HP 0x", "filler used bytes"} {
		if !strings.Contains(r1, want) {
			t.Fatalf("introspection text missing %q:\n%s", want, r1)
		}
	}
}
