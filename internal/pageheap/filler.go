package pageheap

import (
	"fmt"
	"math/bits"

	"wsmalloc/internal/check"
	"wsmalloc/internal/mem"
	"wsmalloc/internal/telemetry"
)

// Lifetime classifies a span allocation for the lifetime-aware filler.
// The classification is static: the paper uses span capacity as the
// lifetime proxy (capacity < C means the span dies quickly, Fig. 16).
type Lifetime int

const (
	// LifetimeLong marks spans expected to live long (high capacity).
	LifetimeLong Lifetime = iota
	// LifetimeShort marks spans expected to be returned soon.
	LifetimeShort
	numLifetimes
)

func (l Lifetime) String() string {
	if l == LifetimeShort {
		return "short"
	}
	return "long"
}

// hpTracker records the page-level state of one hugepage owned by the
// filler.
type hpTracker struct {
	id mem.HugePageID
	// used marks pages currently allocated to spans.
	used bitmap256
	// released marks free pages that were subreleased to the OS.
	released      bitmap256
	usedCount     int
	releasedCount int
	longestFree   int
	// donated is true for tail hugepages donated by large allocations;
	// the filler avoids them unless nothing else fits.
	donated bool
	// lastFreeNs is the virtual time pages last became free on this
	// hugepage; the free-span age histograms in the pageheapz report
	// measure how long fragmentation has been sitting here.
	lastFreeNs int64
	// intact mirrors os.IsIntact for this hugepage while the filler owns
	// it. The only transition under filler ownership is intact→broken at
	// the first subrelease (Remap never runs mid-ownership), so the
	// mirror lets Stats stay O(1) instead of consulting the OS map per
	// hugepage.
	intact bool

	prev, next *hpTracker
	list       *trackerList
}

// freePages returns pages available for allocation (mapped or refaultable).
func (t *hpTracker) freePages() int { return mem.PagesPerHugePage - t.usedCount }

type trackerList struct {
	head, tail *hpTracker
	size       int
}

func (l *trackerList) pushFront(t *hpTracker) {
	if t.list != nil {
		panic("pageheap: tracker already listed")
	}
	t.list = l
	t.next = l.head
	if l.head != nil {
		l.head.prev = t
	} else {
		l.tail = t
	}
	l.head = t
	l.size++
}

func (l *trackerList) remove(t *hpTracker) {
	if t.list != l {
		panic("pageheap: tracker not in this list")
	}
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		l.head = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	} else {
		l.tail = t.prev
	}
	t.prev, t.next, t.list = nil, nil, nil
	l.size--
}

// fillerChunks sub-orders trackers with equal longest-free-range by
// allocation density; chunk 0 is reserved for donated hugepages.
const fillerChunks = 8

// Filler packs sub-hugepage span allocations onto hugepages, always
// preferring the most-allocated hugepage that can fit the request so that
// lightly-used hugepages drain and become releasable (§4.4).
type Filler struct {
	os *mem.OS
	// lists[lfr][chunk]: trackers whose longest free run is lfr.
	lists [mem.PagesPerHugePage + 1][fillerChunks + 1]trackerList
	// chunkMask[lfr] has bit c set iff lists[lfr][c] is non-empty, and
	// rowMask has bit lfr set iff any chunk of row lfr is non-empty, so
	// Alloc finds the tightest adequate free run with a handful of bit
	// scans instead of probing every (lfr, chunk) list head.
	chunkMask [mem.PagesPerHugePage + 1]uint16
	rowMask   [(mem.PagesPerHugePage + 64) / 64]uint64
	byID      map[mem.HugePageID]*hpTracker
	// onEmpty is called when a hugepage becomes completely free and
	// intact; ownership passes back to the caller (the HugeCache).
	onEmpty func(mem.HugePageID)

	usedPages     int64
	releasedTotal int64 // cumulative pages subreleased
	refaults      int64
	hugesReturned int64 // whole hugepages handed back via onEmpty
	brokenDrained int64 // broken hugepages fully subreleased on drain
	// releasedPages and usedOnIntactPages are maintained incrementally
	// so Stats never walks the tracker map (the walk dominated fleet
	// profiles); CheckInvariants audits them against recounts.
	releasedPages     int64 // subreleased pages inside tracked hugepages
	usedOnIntactPages int64 // used pages on intact tracked hugepages

	// freeTrackers stashes the structs of dropped trackers for reuse —
	// a pure allocation cache, never part of serialized or audited state.
	freeTrackers []*hpTracker

	tel *telemetry.Sink
	now func() int64
}

// maxFreeTrackers bounds the tracker structs parked for reuse.
const maxFreeTrackers = 64

// newTracker returns a zeroed tracker, recycled when possible.
func (f *Filler) newTracker() *hpTracker {
	if n := len(f.freeTrackers); n > 0 {
		t := f.freeTrackers[n-1]
		f.freeTrackers[n-1] = nil
		f.freeTrackers = f.freeTrackers[:n-1]
		*t = hpTracker{}
		return t
	}
	return &hpTracker{}
}

// recycleTracker parks a dropped (unlinked, unmapped) tracker for reuse.
func (f *Filler) recycleTracker(t *hpTracker) {
	if len(f.freeTrackers) < maxFreeTrackers {
		f.freeTrackers = append(f.freeTrackers, t)
	}
}

// SetTelemetry installs the telemetry sink (nil disables).
func (f *Filler) SetTelemetry(s *telemetry.Sink) { f.tel = s }

// SetClock installs the virtual-time source used to timestamp free
// spans (nil reads as time zero).
func (f *Filler) SetClock(fn func() int64) { f.now = fn }

func (f *Filler) nowNs() int64 {
	if f.now == nil {
		return 0
	}
	return f.now()
}

// NewFiller creates a filler over os. onEmpty receives hugepages that
// became completely free while still intact.
func NewFiller(o *mem.OS, onEmpty func(mem.HugePageID)) *Filler {
	return &Filler{os: o, byID: make(map[mem.HugePageID]*hpTracker), onEmpty: onEmpty}
}

// chunkOf buckets a tracker by allocation density (denser = higher).
func chunkOf(t *hpTracker) int {
	if t.donated {
		return 0
	}
	return 1 + t.usedCount*(fillerChunks-1)/mem.PagesPerHugePage
}

func (f *Filler) insert(t *hpTracker) {
	lfr, chunk := t.longestFree, chunkOf(t)
	f.lists[lfr][chunk].pushFront(t)
	f.chunkMask[lfr] |= 1 << uint(chunk)
	f.rowMask[lfr>>6] |= 1 << uint(lfr&63)
}

func (f *Filler) unlink(t *hpTracker) {
	// longestFree and chunkOf(t) still name the list t sits on: every
	// caller unlinks before mutating the tracker (trackerList.remove
	// panics on a mismatched list if that ever regresses).
	lfr, chunk := t.longestFree, chunkOf(t)
	if t.list != &f.lists[lfr][chunk] {
		panic("pageheap: tracker mutated before unlink")
	}
	t.list.remove(t)
	if f.lists[lfr][chunk].size == 0 {
		f.chunkMask[lfr] &^= 1 << uint(chunk)
		if f.chunkMask[lfr] == 0 {
			f.rowMask[lfr>>6] &^= 1 << uint(lfr&63)
		}
	}
}

// AddHugePage introduces a fresh, fully-free hugepage to the filler.
func (f *Filler) AddHugePage(h mem.HugePageID) {
	if _, ok := f.byID[h]; ok {
		panic(fmt.Sprintf("pageheap: hugepage %#x already in filler", h.Addr()))
	}
	t := f.newTracker()
	t.id, t.longestFree, t.lastFreeNs = h, mem.PagesPerHugePage, f.nowNs()
	t.intact = f.os.IsIntact(h)
	f.byID[h] = t
	f.insert(t)
}

// AddDonated introduces the tail hugepage of a large allocation: its first
// leadingUsed pages belong to that allocation, the rest become filler
// capacity. The donated pages are freed later through Free.
func (f *Filler) AddDonated(h mem.HugePageID, leadingUsed int) {
	if leadingUsed <= 0 || leadingUsed >= mem.PagesPerHugePage {
		panic(fmt.Sprintf("pageheap: AddDonated with %d leading pages", leadingUsed))
	}
	if _, ok := f.byID[h]; ok {
		panic(fmt.Sprintf("pageheap: hugepage %#x already in filler", h.Addr()))
	}
	t := f.newTracker()
	t.id, t.donated, t.lastFreeNs = h, true, f.nowNs()
	t.intact = f.os.IsIntact(h)
	t.used.setRange(0, leadingUsed)
	t.usedCount = leadingUsed
	t.longestFree = t.used.longestFreeRun()
	f.byID[h] = t
	f.insert(t)
	f.usedPages += int64(leadingUsed)
	if t.intact {
		f.usedOnIntactPages += int64(leadingUsed)
	}
}

// Alloc carves n pages out of an existing filler hugepage. ok is false
// when no tracked hugepage has a free run of n pages; the caller then maps
// a new hugepage and calls AddHugePage first.
func (f *Filler) Alloc(n int) (mem.PageID, bool) {
	if n <= 0 || n > mem.PagesPerHugePage {
		panic(fmt.Sprintf("pageheap: filler alloc of %d pages", n))
	}
	// Tightest adequate free run first (densest hugepages), densest chunk
	// first, donated last — found by scanning the occupancy masks rather
	// than probing every list head.
	for wi := n >> 6; wi < len(f.rowMask); wi++ {
		w := f.rowMask[wi]
		if wi == n>>6 {
			w &= ^uint64(0) << uint(n&63)
		}
		if w != 0 {
			lfr := wi<<6 + bits.TrailingZeros64(w)
			chunk := bits.Len16(f.chunkMask[lfr]) - 1
			return f.allocFrom(f.lists[lfr][chunk].head, n), true
		}
	}
	return 0, false
}

func (f *Filler) allocFrom(t *hpTracker, n int) mem.PageID {
	idx := t.used.findFreeRun(n)
	if idx < 0 {
		panic("pageheap: tracker listed with stale longest-free-range")
	}
	// Refault any subreleased pages inside the chosen run.
	refault := t.released.countRange(idx, n)
	if refault > 0 {
		f.os.Refault(t.id, refault)
		t.released.clearRange(idx, n)
		t.releasedCount -= refault
		f.refaults += int64(refault)
		f.releasedPages -= int64(refault)
	}
	f.unlink(t)
	t.used.setRange(idx, n)
	t.usedCount += n
	t.longestFree = t.used.longestFreeRun()
	if t.intact {
		f.usedOnIntactPages += int64(n)
	}
	// Once a donated hugepage receives a filler allocation it behaves
	// like a regular one.
	t.donated = false
	f.insert(t)
	f.usedPages += int64(n)
	f.tel.Event(telemetry.EvFillerPack, int64(t.id), int64(n))
	return t.id.FirstPage() + mem.PageID(idx)
}

// Owns reports whether the filler manages the hugepage containing p.
func (f *Filler) Owns(p mem.PageID) bool {
	_, ok := f.byID[p.HugePage()]
	return ok
}

// Free returns n pages starting at p to the filler. When the hugepage
// becomes completely free it leaves the filler: intact hugepages are
// passed to onEmpty, broken ones are fully subreleased to the OS.
func (f *Filler) Free(p mem.PageID, n int) {
	h := p.HugePage()
	t, ok := f.byID[h]
	if !ok {
		panic(fmt.Sprintf("pageheap: free of pages not owned by filler (page %#x)", p.Addr()))
	}
	idx := p.IndexInHugePage()
	if idx+n > mem.PagesPerHugePage {
		panic("pageheap: free range crosses hugepage boundary")
	}
	if t.used.countRange(idx, n) != n {
		panic("pageheap: freeing pages that are not allocated")
	}
	f.unlink(t)
	t.used.clearRange(idx, n)
	t.usedCount -= n
	t.lastFreeNs = f.nowNs()
	f.usedPages -= int64(n)
	if t.intact {
		f.usedOnIntactPages -= int64(n)
	}
	f.tel.Event(telemetry.EvFillerUnpack, int64(h), int64(n))
	if t.usedCount == 0 {
		delete(f.byID, h)
		if t.releasedCount > 0 {
			// Broken hugepage: subrelease the remainder; the mapping
			// disappears entirely.
			f.os.Subrelease(h, mem.PagesPerHugePage-t.releasedCount)
			f.releasedTotal += int64(mem.PagesPerHugePage - t.releasedCount)
			f.releasedPages -= int64(t.releasedCount)
			f.brokenDrained++
		} else {
			f.hugesReturned++
			f.onEmpty(h)
		}
		f.recycleTracker(t)
		return
	}
	t.longestFree = t.used.longestFreeRun()
	f.insert(t)
}

// ReleasePages subreleases up to target free pages back to the OS,
// starting from the sparsest (most-free, least-allocated) hugepages so
// that dense hugepages keep their TLB benefit. Hugepages whose allocation
// density exceeds maxDensity are never broken (the skip-subrelease
// policy of Maas et al. [49]: breaking a dense hugepage trades a little
// memory for a permanent TLB loss). It returns the number of pages
// actually released.
func (f *Filler) ReleasePages(target int, maxDensity float64) int {
	limit := int(maxDensity * mem.PagesPerHugePage)
	released := 0
	for lfr := mem.PagesPerHugePage; lfr >= 1 && released < target; lfr-- {
		for chunk := 0; chunk <= fillerChunks && released < target; chunk++ {
			for t := f.lists[lfr][chunk].head; t != nil && released < target; {
				next := t.next
				if t.usedCount <= limit {
					released += f.subreleaseFree(t)
				}
				t = next
			}
		}
	}
	return released
}

// subreleaseFree releases every free-and-mapped page of t.
func (f *Filler) subreleaseFree(t *hpTracker) int {
	n := 0
	for i := 0; i < mem.PagesPerHugePage; i++ {
		if !t.used.get(i) && !t.released.get(i) {
			t.released.set(i)
			t.releasedCount++
			n++
		}
	}
	if n > 0 {
		f.os.Subrelease(t.id, n)
		f.releasedTotal += int64(n)
		f.releasedPages += int64(n)
		if t.intact {
			// First subrelease breaks the hugepage; its used pages stop
			// counting toward hugepage coverage.
			t.intact = false
			f.usedOnIntactPages -= int64(t.usedCount)
		}
		f.tel.EventAdd(telemetry.EvSubrelease, int64(n), int64(t.id), int64(n))
	}
	if t.releasedCount == mem.PagesPerHugePage {
		// The whole hugepage was free: the OS has unmapped it; drop the
		// tracker so nothing tries to refault a dead mapping.
		f.unlink(t)
		delete(f.byID, t.id)
		f.releasedPages -= int64(t.releasedCount)
		f.brokenDrained++
		f.recycleTracker(t)
	}
	return n
}

// FillerStats summarizes filler state.
type FillerStats struct {
	// HugePages is the number of hugepages currently tracked.
	HugePages int
	// UsedBytes is memory allocated to spans.
	UsedBytes int64
	// FreeBytes is mapped-but-free memory (external fragmentation held
	// by the filler).
	FreeBytes int64
	// ReleasedBytes is subreleased (unmapped) memory inside tracked
	// hugepages.
	ReleasedBytes int64
	// UsedOnIntact is the portion of UsedBytes living on intact
	// (hugepage-backed) hugepages; the numerator of hugepage coverage.
	UsedOnIntact int64
	// Refaults counts pages re-mapped after subrelease.
	Refaults int64
	// HugesReturned counts intact hugepages drained and handed back.
	HugesReturned int64
	// BrokenDrained counts broken hugepages drained and fully released.
	BrokenDrained int64
	// CumulativeReleased counts pages ever subreleased.
	CumulativeReleased int64
}

// Stats computes current filler statistics in O(1): every field is an
// incrementally-maintained counter (the former per-hugepage walk
// dominated fleet CPU profiles via the per-refill heap stats reads).
func (f *Filler) Stats() FillerStats {
	freePages := int64(len(f.byID))*mem.PagesPerHugePage - f.usedPages - f.releasedPages
	return FillerStats{
		HugePages:          len(f.byID),
		UsedBytes:          f.usedPages * mem.PageSize,
		FreeBytes:          freePages * mem.PageSize,
		ReleasedBytes:      f.releasedPages * mem.PageSize,
		UsedOnIntact:       f.usedOnIntactPages * mem.PageSize,
		Refaults:           f.refaults,
		HugesReturned:      f.hugesReturned,
		BrokenDrained:      f.brokenDrained,
		CumulativeReleased: f.releasedTotal,
	}
}

// CheckInvariants audits the filler: per-tracker counters against bitmap
// recounts, agreement with the OS on subreleased pages, correct placement
// in the longest-free-run/density lists, and the aggregate used-page
// counter.
func (f *Filler) CheckInvariants() []check.Violation {
	var vs []check.Violation
	var usedTotal, releasedTotal, usedOnIntactTotal int64
	for h, t := range f.byID {
		if t.intact != f.os.IsIntact(t.id) {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler hugepage %#x cached intact=%v, OS says %v",
				h.Addr(), t.intact, f.os.IsIntact(t.id)))
		}
		if t.intact {
			usedOnIntactTotal += int64(t.usedCount)
		}
		releasedTotal += int64(t.releasedCount)
		if t.id != h {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler tracker filed under %#x claims hugepage %#x", h.Addr(), t.id.Addr()))
		}
		if got := t.used.count(); got != t.usedCount {
			vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
				"filler hugepage %#x counts %d used pages, bitmap holds %d",
				h.Addr(), t.usedCount, got))
		}
		if got := t.released.count(); got != t.releasedCount {
			vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
				"filler hugepage %#x counts %d released pages, bitmap holds %d",
				h.Addr(), t.releasedCount, got))
		}
		if got := t.used.longestFreeRun(); got != t.longestFree {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler hugepage %#x cached longest-free-run %d, bitmap says %d",
				h.Addr(), t.longestFree, got))
		}
		for i := 0; i < mem.PagesPerHugePage; i++ {
			if t.used.get(i) && t.released.get(i) {
				vs = append(vs, check.Violationf("pageheap", check.KindStructure,
					"filler hugepage %#x page %d both used and subreleased", h.Addr(), i))
				break
			}
		}
		if !f.os.IsMapped(h) {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler holds unmapped hugepage %#x", h.Addr()))
		} else if got := f.os.ReleasedPages(h); got != t.releasedCount {
			vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
				"filler hugepage %#x tracks %d subreleased pages, OS says %d",
				h.Addr(), t.releasedCount, got))
		}
		if t.list == nil {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler hugepage %#x is not on any list", h.Addr()))
		} else if t.list != &f.lists[t.longestFree][chunkOf(t)] {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler hugepage %#x listed under wrong longest-free-run/density bucket", h.Addr()))
		}
		usedTotal += int64(t.usedCount)
	}
	listed := 0
	for lfr := 0; lfr <= mem.PagesPerHugePage; lfr++ {
		var wantChunks uint16
		for chunk := 0; chunk <= fillerChunks; chunk++ {
			if f.lists[lfr][chunk].size > 0 {
				wantChunks |= 1 << uint(chunk)
			}
			for t := f.lists[lfr][chunk].head; t != nil; t = t.next {
				listed++
				if f.byID[t.id] != t {
					vs = append(vs, check.Violationf("pageheap", check.KindStructure,
						"filler list holds tracker for %#x unknown to the index", t.id.Addr()))
				}
			}
		}
		if f.chunkMask[lfr] != wantChunks {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler chunk mask for run %d is %#x, lists say %#x",
				lfr, f.chunkMask[lfr], wantChunks))
		}
		if got := f.rowMask[lfr>>6]&(1<<uint(lfr&63)) != 0; got != (wantChunks != 0) {
			vs = append(vs, check.Violationf("pageheap", check.KindStructure,
				"filler row mask bit for run %d is %v, lists say %v",
				lfr, got, wantChunks != 0))
		}
	}
	if listed != len(f.byID) {
		vs = append(vs, check.Violationf("pageheap", check.KindStructure,
			"filler lists hold %d trackers, index holds %d", listed, len(f.byID)))
	}
	if usedTotal != f.usedPages {
		vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
			"filler used-page counter %d disagrees with per-hugepage total %d",
			f.usedPages, usedTotal))
	}
	if releasedTotal != f.releasedPages {
		vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
			"filler released-page counter %d disagrees with per-hugepage total %d",
			f.releasedPages, releasedTotal))
	}
	if usedOnIntactTotal != f.usedOnIntactPages {
		vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
			"filler used-on-intact counter %d disagrees with per-hugepage total %d",
			f.usedOnIntactPages, usedOnIntactTotal))
	}
	return vs
}
