package pageheap

import (
	"fmt"

	"wsmalloc/internal/check"
	"wsmalloc/internal/mem"
)

// regionHugePages is the size of one HugeRegion in hugepages. Allocations
// that slightly exceed a hugepage (e.g. 2.1 MiB) are packed together onto
// these contiguous runs so their slack overlaps instead of wasting a
// mostly-empty trailing hugepage each (§4.4). Regions are kept small so
// a lightly-used region does not itself become the fragmentation story.
const regionHugePages = 4

// regionPages is the region size in TCMalloc pages.
const regionPages = regionHugePages * mem.PagesPerHugePage

// region tracks one contiguous run of hugepages with page-granularity
// occupancy.
type region struct {
	start     mem.HugePageID
	used      []uint64 // regionPages bits
	usedCount int
}

func newRegion(start mem.HugePageID) *region {
	return &region{start: start, used: make([]uint64, regionPages/64)}
}

func (r *region) get(i int) bool { return r.used[i>>6]&(1<<uint(i&63)) != 0 }
func (r *region) set(i int)      { r.used[i>>6] |= 1 << uint(i&63) }
func (r *region) clearBit(i int) { r.used[i>>6] &^= 1 << uint(i&63) }
func (r *region) firstPage() mem.PageID {
	return r.start.FirstPage()
}

// findFreeRun returns the first run of n free pages, or -1.
func (r *region) findFreeRun(n int) int {
	run, start := 0, 0
	for i := 0; i < regionPages; i++ {
		if r.get(i) {
			run = 0
			start = i + 1
			continue
		}
		run++
		if run == n {
			return start
		}
	}
	return -1
}

// HugeRegion packs allocations of one-to-several hugepages with large
// slack onto shared contiguous hugepage runs. Regions are mapped whole
// and released whole, so they never break hugepages.
type HugeRegion struct {
	os      *mem.OS
	regions []*region
	byHuge  map[mem.HugePageID]*region
	// onRelease receives the hugepages of a drained region; when nil
	// they are released straight to the OS.
	onRelease func(start mem.HugePageID, n int)

	usedPages int64
	allocs    int64
	frees     int64
}

// NewHugeRegion creates an empty region allocator. onRelease, when
// non-nil, receives drained regions' hugepages (typically the HugeCache)
// instead of returning them to the OS.
func NewHugeRegion(o *mem.OS, onRelease func(start mem.HugePageID, n int)) *HugeRegion {
	return &HugeRegion{os: o, byHuge: make(map[mem.HugePageID]*region), onRelease: onRelease}
}

// Alloc places an n-page allocation in a region, creating a new region
// when none has room. n must fit in one region. Mapping a fresh region
// can fail under fault injection; the error propagates to the caller.
func (h *HugeRegion) Alloc(n int) (mem.PageID, error) {
	if n <= 0 || n > regionPages {
		panic(fmt.Sprintf("pageheap: region alloc of %d pages", n))
	}
	var target *region
	idx := -1
	// Densest-region-first keeps sparse regions drainable.
	for _, r := range h.regions {
		if i := r.findFreeRun(n); i >= 0 {
			if target == nil || r.usedCount > target.usedCount {
				target, idx = r, i
			}
		}
	}
	if target == nil {
		start, err := h.os.MapHuge(regionHugePages)
		if err != nil {
			return 0, err
		}
		target = newRegion(start)
		h.regions = append(h.regions, target)
		for i := 0; i < regionHugePages; i++ {
			h.byHuge[start+mem.HugePageID(i)] = target
		}
		idx = 0
	}
	for i := idx; i < idx+n; i++ {
		target.set(i)
	}
	target.usedCount += n
	h.usedPages += int64(n)
	h.allocs++
	return target.firstPage() + mem.PageID(idx), nil
}

// Owns reports whether p lies in a live region.
func (h *HugeRegion) Owns(p mem.PageID) bool {
	_, ok := h.byHuge[p.HugePage()]
	return ok
}

// Free releases n pages starting at p. A region whose last allocation is
// freed is unmapped whole.
func (h *HugeRegion) Free(p mem.PageID, n int) {
	r, ok := h.byHuge[p.HugePage()]
	if !ok {
		panic(fmt.Sprintf("pageheap: region free of unowned page %#x", p.Addr()))
	}
	offset := int(p - r.firstPage())
	if offset < 0 || offset+n > regionPages {
		panic("pageheap: region free out of range")
	}
	for i := offset; i < offset+n; i++ {
		if !r.get(i) {
			panic("pageheap: region double free")
		}
		r.clearBit(i)
	}
	r.usedCount -= n
	h.usedPages -= int64(n)
	h.frees++
	if r.usedCount == 0 {
		h.releaseRegion(r)
	}
}

func (h *HugeRegion) releaseRegion(r *region) {
	for i := 0; i < regionHugePages; i++ {
		delete(h.byHuge, r.start+mem.HugePageID(i))
	}
	if h.onRelease != nil {
		h.onRelease(r.start, regionHugePages)
	} else {
		for i := 0; i < regionHugePages; i++ {
			h.os.ReleaseHuge(r.start + mem.HugePageID(i))
		}
	}
	for i, cand := range h.regions {
		if cand == r {
			h.regions = append(h.regions[:i], h.regions[i+1:]...)
			return
		}
	}
	panic("pageheap: releasing unknown region")
}

// HugeRegionStats summarizes region state.
type HugeRegionStats struct {
	Regions   int
	UsedBytes int64
	FreeBytes int64
	Allocs    int64
	Frees     int64
}

// Stats returns current statistics.
func (h *HugeRegion) Stats() HugeRegionStats {
	return HugeRegionStats{
		Regions:   len(h.regions),
		UsedBytes: h.usedPages * mem.PageSize,
		FreeBytes: int64(len(h.regions))*regionPages*mem.PageSize - h.usedPages*mem.PageSize,
		Allocs:    h.allocs,
		Frees:     h.frees,
	}
}

// CheckInvariants audits the region allocator: per-region used counters
// against bitmap popcounts, the hugepage index, mapped-and-intact status
// (regions never break hugepages), and the aggregate used-page counter.
func (h *HugeRegion) CheckInvariants() []check.Violation {
	var vs []check.Violation
	var usedTotal int64
	for _, r := range h.regions {
		recount := 0
		for j := 0; j < regionPages; j++ {
			if r.get(j) {
				recount++
			}
		}
		if recount != r.usedCount {
			vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
				"region at %#x counts %d used pages, bitmap holds %d",
				r.start.Addr(), r.usedCount, recount))
		}
		usedTotal += int64(r.usedCount)
		for j := 0; j < regionHugePages; j++ {
			hp := r.start + mem.HugePageID(j)
			if h.byHuge[hp] != r {
				vs = append(vs, check.Violationf("pageheap", check.KindStructure,
					"region hugepage %#x missing from or misfiled in index", hp.Addr()))
			}
			if !h.os.IsMapped(hp) {
				vs = append(vs, check.Violationf("pageheap", check.KindStructure,
					"region holds unmapped hugepage %#x", hp.Addr()))
			} else if !h.os.IsIntact(hp) {
				vs = append(vs, check.Violationf("pageheap", check.KindStructure,
					"region hugepage %#x is broken; regions never subrelease", hp.Addr()))
			}
		}
	}
	if usedTotal != h.usedPages {
		vs = append(vs, check.Violationf("pageheap", check.KindAccounting,
			"region used-page counter %d disagrees with per-region total %d",
			h.usedPages, usedTotal))
	}
	if len(h.byHuge) != len(h.regions)*regionHugePages {
		vs = append(vs, check.Violationf("pageheap", check.KindStructure,
			"region index has %d hugepages for %d regions", len(h.byHuge), len(h.regions)))
	}
	return vs
}
