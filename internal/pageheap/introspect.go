package pageheap

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"wsmalloc/internal/mem"
)

// This file implements the "pageheapz" introspection view: per-hugepage
// occupancy maps, free-span age histograms, and the back-end half of
// the fragmentation decomposition (the paper's Fig. 11 splits mapped
// memory into live, slack, CFL free-span, filler-free and unmapped
// bytes; the CFL and cache tiers are filled in by core).

// HugePageZ describes one filler-owned hugepage: its page-level
// occupancy as a used/free/released run-length encoding plus the
// counters behind the filler's packing decisions.
type HugePageZ struct {
	Addr     uint64 `json:"addr"`
	Lifetime string `json:"lifetime"` // "long" or "short" filler set
	Donated  bool   `json:"donated,omitempty"`

	UsedPages      int `json:"used_pages"`
	FreePages      int `json:"free_pages"`
	ReleasedPages  int `json:"released_pages"`
	LongestFreeRun int `json:"longest_free_run"`

	// Intact reports whether the OS still backs this range with a real
	// hugepage (false once any page was subreleased).
	Intact bool `json:"intact"`

	// RLE encodes the 256-page occupancy map as runs of U (used),
	// F (mapped free) and R (released), e.g. "U24F8R32U192".
	RLE string `json:"occupancy_rle"`

	// FreeAgeNs is how long ago pages last became free here (0 when the
	// hugepage is fully used).
	FreeAgeNs int64 `json:"free_age_ns,omitempty"`
}

// CacheRangeZ describes one free hugepage run held by the HugeCache.
type CacheRangeZ struct {
	Addr      uint64 `json:"addr"`
	HugePages int    `json:"hugepages"`
	FreeAgeNs int64  `json:"free_age_ns"`
}

// AgeBucket is one decade bucket of a free-span age histogram; Count is
// the weight (pages or bytes, per the histogram's documentation) whose
// age falls in [LoNs, HiNs).
type AgeBucket struct {
	LoNs  int64 `json:"lo_ns"`
	HiNs  int64 `json:"hi_ns"`
	Count int64 `json:"count"`
}

// AgeHistogram accumulates decade buckets 10^3..10^16 ns plus an
// underflow bucket [0, 10^3). Counts are integral so merged exports
// stay exact; the zero value is ready to use.
type AgeHistogram struct {
	buckets [15]int64
}

// Add records weight at age ageNs (negative ages clamp to zero).
func (h *AgeHistogram) Add(ageNs, weight int64) {
	if ageNs < 0 {
		ageNs = 0
	}
	idx := 0
	for bound := int64(1000); idx < len(h.buckets)-1 && ageNs >= bound; bound *= 10 {
		idx++
	}
	h.buckets[idx] += weight
}

// Buckets exports the occupied buckets in age order.
func (h *AgeHistogram) Buckets() []AgeBucket {
	var out []AgeBucket
	lo := int64(0)
	hi := int64(1000)
	for i := 0; i < len(h.buckets); i++ {
		if h.buckets[i] > 0 {
			out = append(out, AgeBucket{LoNs: lo, HiNs: hi, Count: h.buckets[i]})
		}
		lo = hi
		hi *= 10
	}
	return out
}

// Introspection is the full pageheapz snapshot of the back-end.
type Introspection struct {
	NowNs int64 `json:"now_ns"`

	// HugePages lists every filler-owned hugepage, sorted by address.
	HugePages []HugePageZ `json:"hugepages"`
	// CacheRanges lists the HugeCache's free runs, sorted by address.
	CacheRanges []CacheRangeZ `json:"cache_ranges,omitempty"`

	// Back-end byte decomposition (Fig. 11 terms owned by this layer).
	FillerUsedBytes     int64 `json:"filler_used_bytes"`
	FillerFreeBytes     int64 `json:"filler_free_bytes"`
	FillerReleasedBytes int64 `json:"filler_released_bytes"` // unmapped inside broken hugepages
	RegionUsedBytes     int64 `json:"region_used_bytes"`
	SlackBytes          int64 `json:"slack_bytes"` // region mapped-but-free
	LargeUsedBytes      int64 `json:"large_used_bytes"`
	CacheFreeBytes      int64 `json:"cache_free_bytes"`

	// FreeSpanAges histograms mapped-but-free pages by how long they
	// have been free: filler free runs plus cached hugepage runs.
	FreeSpanAges []AgeBucket `json:"free_span_ages,omitempty"`
}

// rleOccupancy renders the tracker's 256-page map as U/F/R runs.
func rleOccupancy(t *hpTracker) string {
	var sb strings.Builder
	classify := func(i int) byte {
		switch {
		case t.used.get(i):
			return 'U'
		case t.released.get(i):
			return 'R'
		default:
			return 'F'
		}
	}
	run, start := classify(0), 0
	for i := 1; i <= mem.PagesPerHugePage; i++ {
		var c byte
		if i < mem.PagesPerHugePage {
			c = classify(i)
		}
		if i == mem.PagesPerHugePage || c != run {
			fmt.Fprintf(&sb, "%c%d", run, i-start)
			run, start = c, i
		}
	}
	return sb.String()
}

// Introspect builds the pageheapz snapshot at virtual time now. The
// output is deterministic: hugepages and cache ranges are sorted by
// address, and histogram counts are integral.
func (p *PageHeap) Introspect(now int64) Introspection {
	z := Introspection{NowNs: now}
	var ages AgeHistogram

	for lt, f := range p.fillers {
		ids := make([]mem.HugePageID, 0, len(f.byID))
		for id := range f.byID {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			t := f.byID[id]
			free := mem.PagesPerHugePage - t.usedCount - t.releasedCount
			hp := HugePageZ{
				Addr:           id.Addr(),
				Lifetime:       Lifetime(lt).String(),
				Donated:        t.donated,
				UsedPages:      t.usedCount,
				FreePages:      free,
				ReleasedPages:  t.releasedCount,
				LongestFreeRun: t.longestFree,
				Intact:         p.os.IsIntact(id),
				RLE:            rleOccupancy(t),
			}
			if free > 0 {
				hp.FreeAgeNs = now - t.lastFreeNs
				ages.Add(hp.FreeAgeNs, int64(free))
			}
			z.HugePages = append(z.HugePages, hp)
		}
		fs := f.Stats()
		z.FillerUsedBytes += fs.UsedBytes
		z.FillerFreeBytes += fs.FreeBytes
		z.FillerReleasedBytes += fs.ReleasedBytes
	}
	// The two filler sets were appended long-then-short; restore global
	// address order.
	sort.Slice(z.HugePages, func(i, j int) bool { return z.HugePages[i].Addr < z.HugePages[j].Addr })

	for _, r := range p.cache.ranges {
		age := now - r.freedAt
		if age < 0 {
			age = 0
		}
		z.CacheRanges = append(z.CacheRanges, CacheRangeZ{
			Addr:      r.start.Addr(),
			HugePages: r.n,
			FreeAgeNs: age,
		})
		ages.Add(age, int64(r.n)*mem.PagesPerHugePage)
	}

	rs := p.region.Stats()
	z.RegionUsedBytes = rs.UsedBytes
	z.SlackBytes = rs.FreeBytes
	z.LargeUsedBytes = p.largeUsedPages * mem.PageSize
	z.CacheFreeBytes = p.cache.CachedBytes()
	z.FreeSpanAges = ages.Buckets()
	return z
}

// FragIntrospect computes just the back-end scalars of the Fig. 11
// fragmentation decomposition — filler free and released bytes, region
// slack, hugecache free — without the per-hugepage enumeration, RLE
// occupancy maps and address sort Introspect pays for the /pageheapz
// document. The continuous-profiling collection tick calls this once
// per sampled machine, so it must stay O(fillers + regions), not
// O(hugepages).
func (p *PageHeap) FragIntrospect() (fillerFree, fillerReleased, slack, cacheFree int64) {
	for _, f := range p.fillers {
		fs := f.Stats()
		fillerFree += fs.FreeBytes
		fillerReleased += fs.ReleasedBytes
	}
	return fillerFree, fillerReleased, p.region.Stats().FreeBytes, p.cache.CachedBytes()
}

// WriteIntrospection renders the snapshot as the human-readable
// /pageheapz text page.
func WriteIntrospection(w io.Writer, z Introspection) error {
	rule := strings.Repeat("-", 72)
	if _, err := fmt.Fprintf(w, "%s\nPAGEHEAP introspection @ %d virtual ns\n%s\n", rule, z.NowNs, rule); err != nil {
		return err
	}
	rows := []struct {
		name string
		v    int64
	}{
		{"filler used bytes", z.FillerUsedBytes},
		{"filler free bytes", z.FillerFreeBytes},
		{"filler released (unmapped) bytes", z.FillerReleasedBytes},
		{"region used bytes", z.RegionUsedBytes},
		{"region slack bytes", z.SlackBytes},
		{"large used bytes", z.LargeUsedBytes},
		{"hugecache free bytes", z.CacheFreeBytes},
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "PAGEHEAP: %15d  %s\n", r.v, r.name); err != nil {
			return err
		}
	}
	if len(z.FreeSpanAges) > 0 {
		if _, err := fmt.Fprintf(w, "%s\nfree-span ages (mapped-but-free pages by time since freed)\n", rule); err != nil {
			return err
		}
		for _, b := range z.FreeSpanAges {
			if _, err := fmt.Fprintf(w, "PAGEHEAP: [%12d ns, %12d ns) %10d pages\n", b.LoNs, b.HiNs, b.Count); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\nhugepages (%d tracked by filler)\n", rule, len(z.HugePages)); err != nil {
		return err
	}
	for _, hp := range z.HugePages {
		flags := ""
		if hp.Donated {
			flags += " donated"
		}
		if !hp.Intact {
			flags += " broken"
		}
		if _, err := fmt.Fprintf(w, "HP %#014x %-5s used=%3d free=%3d rel=%3d lfr=%3d age=%dns%s %s\n",
			hp.Addr, hp.Lifetime, hp.UsedPages, hp.FreePages, hp.ReleasedPages,
			hp.LongestFreeRun, hp.FreeAgeNs, flags, hp.RLE); err != nil {
			return err
		}
	}
	if len(z.CacheRanges) > 0 {
		if _, err := fmt.Fprintf(w, "%s\nhugecache ranges (%d)\n", rule, len(z.CacheRanges)); err != nil {
			return err
		}
		for _, r := range z.CacheRanges {
			if _, err := fmt.Fprintf(w, "HC %#014x hugepages=%d age=%dns\n", r.Addr, r.HugePages, r.FreeAgeNs); err != nil {
				return err
			}
		}
	}
	return nil
}
