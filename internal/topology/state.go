package topology

import "wsmalloc/internal/snapshot"

// EncodeState serializes the vCPU assignment in first-touch order (the
// toPhys slice fully determines the map).
func (m *VCPUMap) EncodeState(e *snapshot.Encoder) {
	e.Section("vcpumap")
	e.Len(len(m.toPhys))
	for _, phys := range m.toPhys {
		e.Int(phys)
	}
}

// DecodeState restores the assignment saved by EncodeState.
func (m *VCPUMap) DecodeState(d *snapshot.Decoder) {
	d.Section("vcpumap")
	n := d.Len(8)
	m.toPhys = make([]int, 0, n)
	m.toVCPU = make([]int, m.topology.NumCPUs())
	for i := range m.toVCPU {
		m.toVCPU[i] = -1
	}
	for i := 0; i < n; i++ {
		phys := d.Int()
		if d.Err() != nil {
			return
		}
		if phys < 0 || phys >= m.topology.NumCPUs() {
			d.Fail("topology: vcpu %d maps to physical CPU %d outside [0,%d)",
				i, phys, m.topology.NumCPUs())
			return
		}
		m.toVCPU[phys] = len(m.toPhys)
		m.toPhys = append(m.toPhys, phys)
	}
}
