package topology

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogValid(t *testing.T) {
	share := 0.0
	for _, p := range Catalog {
		if err := p.Validate(); err != nil {
			t.Errorf("platform %s invalid: %v", p.Name, err)
		}
		share += p.FleetShare
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("fleet shares sum to %v, want 1", share)
	}
}

func TestHyperthreadGrowth4x(t *testing.T) {
	first := Catalog[0].NumCPUs()
	last := Catalog[len(Catalog)-1].NumCPUs()
	if ratio := float64(last) / float64(first); ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("hyperthread growth gen1->gen5 = %vx, paper reports 4x", ratio)
	}
}

func TestChipletInterIntraRatio(t *testing.T) {
	p, ok := ByName("gen5-chiplet")
	if !ok {
		t.Fatal("gen5-chiplet missing")
	}
	topo := New(p)
	if r := topo.InterIntraRatio(); math.Abs(r-2.07) > 0.01 {
		t.Fatalf("inter/intra ratio = %v, paper reports 2.07", r)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("no-such-platform"); ok {
		t.Fatal("unexpected hit")
	}
	p, ok := ByName("gen3-dual-die")
	if !ok || p.Generation != 3 {
		t.Fatalf("lookup failed: %+v ok=%v", p, ok)
	}
}

func TestTopologyMapping(t *testing.T) {
	p := Platform{
		Name: "test", Generation: 1,
		Sockets: 2, LLCDomainsPerSocket: 2, CoresPerDomain: 2, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 10, InterDomainLatencyNs: 20, InterSocketLatencyNs: 40,
		LLCBytes: 1 << 20,
	}
	topo := New(p)
	if topo.NumCPUs() != 16 {
		t.Fatalf("NumCPUs = %d", topo.NumCPUs())
	}
	if topo.NumDomains() != 4 {
		t.Fatalf("NumDomains = %d", topo.NumDomains())
	}
	// CPUs 0..3 in domain 0, 4..7 in domain 1, etc.
	for cpu := 0; cpu < 16; cpu++ {
		wantDomain := cpu / 4
		if topo.DomainOf(cpu) != wantDomain {
			t.Errorf("DomainOf(%d) = %d, want %d", cpu, topo.DomainOf(cpu), wantDomain)
		}
		wantSocket := cpu / 8
		if topo.SocketOf(cpu) != wantSocket {
			t.Errorf("SocketOf(%d) = %d, want %d", cpu, topo.SocketOf(cpu), wantSocket)
		}
		if topo.CoreOf(cpu) != cpu/2 {
			t.Errorf("CoreOf(%d) = %d", cpu, topo.CoreOf(cpu))
		}
	}
}

func TestTransferLatency(t *testing.T) {
	p := Platform{
		Name: "test", Generation: 1,
		Sockets: 2, LLCDomainsPerSocket: 2, CoresPerDomain: 2, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 10, InterDomainLatencyNs: 20, InterSocketLatencyNs: 40,
		LLCBytes: 1 << 20,
	}
	topo := New(p)
	cases := []struct {
		a, b int
		want float64
	}{
		{0, 1, 0},   // same core (siblings)
		{0, 2, 10},  // same domain, different core
		{0, 4, 20},  // same socket, different domain
		{0, 8, 40},  // different socket
		{0, 15, 40}, // different socket
	}
	for _, c := range cases {
		if got := topo.TransferLatencyNs(c.a, c.b); got != c.want {
			t.Errorf("TransferLatencyNs(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := topo.TransferLatencyNs(c.b, c.a); got != c.want {
			t.Errorf("latency not symmetric for (%d,%d)", c.a, c.b)
		}
	}
}

func TestCPUsInDomain(t *testing.T) {
	topo := New(Default())
	seen := map[int]bool{}
	total := 0
	for d := 0; d < topo.NumDomains(); d++ {
		cpus := topo.CPUsInDomain(d)
		total += len(cpus)
		for _, c := range cpus {
			if seen[c] {
				t.Fatalf("cpu %d in two domains", c)
			}
			seen[c] = true
			if topo.DomainOf(c) != d {
				t.Fatalf("cpu %d domain mismatch", c)
			}
		}
	}
	if total != topo.NumCPUs() {
		t.Fatalf("domains cover %d cpus, want %d", total, topo.NumCPUs())
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	good := Platform{
		Name: "x", Sockets: 1, LLCDomainsPerSocket: 1, CoresPerDomain: 1, ThreadsPerCore: 1,
		IntraDomainLatencyNs: 10, InterDomainLatencyNs: 10, InterSocketLatencyNs: 10,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good platform rejected: %v", err)
	}
	bad := []Platform{
		{Name: "s", Sockets: 0, LLCDomainsPerSocket: 1, CoresPerDomain: 1, ThreadsPerCore: 1, IntraDomainLatencyNs: 1, InterDomainLatencyNs: 1, InterSocketLatencyNs: 1},
		{Name: "d", Sockets: 1, LLCDomainsPerSocket: 0, CoresPerDomain: 1, ThreadsPerCore: 1, IntraDomainLatencyNs: 1, InterDomainLatencyNs: 1, InterSocketLatencyNs: 1},
		{Name: "c", Sockets: 1, LLCDomainsPerSocket: 1, CoresPerDomain: 0, ThreadsPerCore: 1, IntraDomainLatencyNs: 1, InterDomainLatencyNs: 1, InterSocketLatencyNs: 1},
		{Name: "t", Sockets: 1, LLCDomainsPerSocket: 1, CoresPerDomain: 1, ThreadsPerCore: 0, IntraDomainLatencyNs: 1, InterDomainLatencyNs: 1, InterSocketLatencyNs: 1},
		{Name: "lat", Sockets: 1, LLCDomainsPerSocket: 1, CoresPerDomain: 1, ThreadsPerCore: 1, IntraDomainLatencyNs: 10, InterDomainLatencyNs: 5, InterSocketLatencyNs: 20},
		{Name: "sock", Sockets: 1, LLCDomainsPerSocket: 1, CoresPerDomain: 1, ThreadsPerCore: 1, IntraDomainLatencyNs: 10, InterDomainLatencyNs: 20, InterSocketLatencyNs: 15},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("platform %q should be invalid", p.Name)
		}
	}
}

func TestVCPUMapDense(t *testing.T) {
	topo := New(Default())
	m := NewVCPUMap(topo)
	// First-touch assignment is dense regardless of physical IDs.
	physical := []int{37, 5, 62, 5, 37, 11}
	want := []int{0, 1, 2, 1, 0, 3}
	for i, phys := range physical {
		if got := m.Assign(phys); got != want[i] {
			t.Fatalf("Assign(%d) = %d, want %d", phys, got, want[i])
		}
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Physical(2) != 62 {
		t.Fatalf("Physical(2) = %d", m.Physical(2))
	}
	if v, ok := m.Lookup(11); !ok || v != 3 {
		t.Fatalf("Lookup(11) = %d,%v", v, ok)
	}
	if _, ok := m.Lookup(99); ok {
		t.Fatal("Lookup(99) should miss")
	}
	if m.DomainOfVCPU(0) != topo.DomainOf(37) {
		t.Fatal("DomainOfVCPU mismatch")
	}
}

func TestVCPUMapProperty(t *testing.T) {
	topo := New(Default())
	f := func(cpus []uint8) bool {
		m := NewVCPUMap(topo)
		seen := map[int]int{}
		for _, raw := range cpus {
			phys := int(raw) % topo.NumCPUs()
			v := m.Assign(phys)
			if prev, ok := seen[phys]; ok && prev != v {
				return false // must be stable
			}
			seen[phys] = v
			if v >= m.Len() {
				return false // dense
			}
		}
		return m.Len() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
