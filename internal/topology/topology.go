// Package topology models the heterogeneous server hardware that a
// warehouse-scale allocator must adapt to: platform generations with
// growing hyperthread counts, chiplet architectures with multiple
// last-level-cache (NUCA) domains per socket, and the non-uniform
// core-to-core transfer latencies the paper measures with Intel MLC in
// Fig. 11.
//
// A Topology maps hardware thread (CPU) IDs to cores, LLC domains, and
// sockets, and prices a cache-to-cache transfer between any two CPUs.
// Platform generations in Catalog reproduce the paper's observation of a
// 4x increase in hyperthreads per server across five generations.
package topology

import (
	"fmt"
	"sort"
)

// Platform describes one server platform generation.
type Platform struct {
	// Name identifies the platform, e.g. "gen5-chiplet".
	Name string
	// Generation orders platforms oldest (1) to newest.
	Generation int
	// Sockets is the number of CPU sockets.
	Sockets int
	// LLCDomainsPerSocket is the number of last-level-cache domains
	// (chiplets/CCXes) per socket; 1 means a monolithic die.
	LLCDomainsPerSocket int
	// CoresPerDomain is the number of physical cores per LLC domain.
	CoresPerDomain int
	// ThreadsPerCore is the SMT width (usually 2).
	ThreadsPerCore int
	// IntraDomainLatencyNs is the cache-to-cache transfer latency between
	// cores sharing an LLC domain.
	IntraDomainLatencyNs float64
	// InterDomainLatencyNs is the transfer latency between cores in
	// different LLC domains on the same socket. The paper measures this
	// as 2.07x the intra-domain latency.
	InterDomainLatencyNs float64
	// InterSocketLatencyNs is the transfer latency across sockets.
	InterSocketLatencyNs float64
	// LLCBytes is the capacity of one LLC domain.
	LLCBytes int64
	// FleetShare is the fraction of fleet machines on this platform.
	FleetShare float64
}

// NumCPUs returns the number of hardware threads on the platform.
func (p Platform) NumCPUs() int {
	return p.Sockets * p.LLCDomainsPerSocket * p.CoresPerDomain * p.ThreadsPerCore
}

// NumDomains returns the total number of LLC domains.
func (p Platform) NumDomains() int {
	return p.Sockets * p.LLCDomainsPerSocket
}

// Validate reports whether the platform description is self-consistent.
func (p Platform) Validate() error {
	switch {
	case p.Sockets <= 0:
		return fmt.Errorf("topology: platform %q has %d sockets", p.Name, p.Sockets)
	case p.LLCDomainsPerSocket <= 0:
		return fmt.Errorf("topology: platform %q has %d LLC domains/socket", p.Name, p.LLCDomainsPerSocket)
	case p.CoresPerDomain <= 0:
		return fmt.Errorf("topology: platform %q has %d cores/domain", p.Name, p.CoresPerDomain)
	case p.ThreadsPerCore <= 0:
		return fmt.Errorf("topology: platform %q has %d threads/core", p.Name, p.ThreadsPerCore)
	case p.IntraDomainLatencyNs <= 0 || p.InterDomainLatencyNs < p.IntraDomainLatencyNs:
		return fmt.Errorf("topology: platform %q has inconsistent latencies", p.Name)
	case p.InterSocketLatencyNs < p.InterDomainLatencyNs:
		return fmt.Errorf("topology: platform %q inter-socket latency below inter-domain", p.Name)
	}
	return nil
}

// Catalog lists the five platform generations used by the fleet
// simulation. Hyperthread counts grow 4x from gen1 to gen5, matching the
// paper's §4.1 observation; later generations are chiplet-based with
// multiple NUCA domains per socket. Latencies are calibrated so that the
// chiplet platforms show the 2.07x inter/intra-domain ratio of Fig. 11.
var Catalog = []Platform{
	{
		Name: "gen1-monolithic", Generation: 1,
		Sockets: 2, LLCDomainsPerSocket: 1, CoresPerDomain: 8, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 42, InterDomainLatencyNs: 42, InterSocketLatencyNs: 131,
		LLCBytes: 20 << 20, FleetShare: 0.08,
	},
	{
		Name: "gen2-monolithic", Generation: 2,
		Sockets: 2, LLCDomainsPerSocket: 1, CoresPerDomain: 12, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 41, InterDomainLatencyNs: 41, InterSocketLatencyNs: 124,
		LLCBytes: 30 << 20, FleetShare: 0.14,
	},
	{
		Name: "gen3-dual-die", Generation: 3,
		Sockets: 2, LLCDomainsPerSocket: 2, CoresPerDomain: 9, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 40, InterDomainLatencyNs: 76, InterSocketLatencyNs: 138,
		LLCBytes: 24 << 20, FleetShare: 0.22,
	},
	{
		Name: "gen4-chiplet", Generation: 4,
		Sockets: 2, LLCDomainsPerSocket: 4, CoresPerDomain: 6, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 40, InterDomainLatencyNs: 82.8, InterSocketLatencyNs: 142,
		LLCBytes: 16 << 20, FleetShare: 0.31,
	},
	{
		Name: "gen5-chiplet", Generation: 5,
		Sockets: 2, LLCDomainsPerSocket: 8, CoresPerDomain: 4, ThreadsPerCore: 2,
		IntraDomainLatencyNs: 40, InterDomainLatencyNs: 82.8, InterSocketLatencyNs: 145,
		LLCBytes: 16 << 20, FleetShare: 0.25,
	},
}

// Default returns the platform used by single-machine benchmarks: the
// newest chiplet generation.
func Default() Platform { return Catalog[len(Catalog)-1] }

// ByName looks a platform up in the Catalog.
func ByName(name string) (Platform, bool) {
	for _, p := range Catalog {
		if p.Name == name {
			return p, true
		}
	}
	return Platform{}, false
}

// Topology precomputes the CPU -> core/domain/socket maps for a platform.
// CPU IDs are dense in [0, NumCPUs()); sibling hyperthreads share a core,
// and cores are numbered domain-major so that CPUs [0, CoresPerDomain*
// ThreadsPerCore) share domain 0, and so on.
type Topology struct {
	platform Platform
	domainOf []int
	socketOf []int
	coreOf   []int
}

// New builds the topology for p. It panics if p fails Validate; platform
// descriptions are static program data, so a bad one is a programming
// error.
func New(p Platform) *Topology {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	n := p.NumCPUs()
	t := &Topology{
		platform: p,
		domainOf: make([]int, n),
		socketOf: make([]int, n),
		coreOf:   make([]int, n),
	}
	cpusPerDomain := p.CoresPerDomain * p.ThreadsPerCore
	domainsPerSocket := p.LLCDomainsPerSocket
	for cpu := 0; cpu < n; cpu++ {
		domain := cpu / cpusPerDomain
		t.domainOf[cpu] = domain
		t.socketOf[cpu] = domain / domainsPerSocket
		t.coreOf[cpu] = cpu / p.ThreadsPerCore
	}
	return t
}

// Platform returns the platform description.
func (t *Topology) Platform() Platform { return t.platform }

// NumCPUs returns the number of hardware threads.
func (t *Topology) NumCPUs() int { return len(t.domainOf) }

// NumDomains returns the number of LLC domains.
func (t *Topology) NumDomains() int { return t.platform.NumDomains() }

// DomainOf returns the LLC domain of a CPU.
func (t *Topology) DomainOf(cpu int) int { return t.domainOf[cpu] }

// SocketOf returns the socket of a CPU.
func (t *Topology) SocketOf(cpu int) int { return t.socketOf[cpu] }

// CoreOf returns the physical core of a CPU.
func (t *Topology) CoreOf(cpu int) int { return t.coreOf[cpu] }

// CPUsInDomain returns the CPU IDs belonging to an LLC domain, ascending.
func (t *Topology) CPUsInDomain(domain int) []int {
	var out []int
	for cpu, d := range t.domainOf {
		if d == domain {
			out = append(out, cpu)
		}
	}
	sort.Ints(out)
	return out
}

// TransferLatencyNs prices a cache-to-cache transfer of one line between
// two CPUs: zero on the same core, intra-domain within one LLC domain,
// inter-domain within a socket, inter-socket otherwise. This is the
// quantity the paper measures in Fig. 11.
func (t *Topology) TransferLatencyNs(a, b int) float64 {
	p := t.platform
	switch {
	case t.coreOf[a] == t.coreOf[b]:
		return 0
	case t.domainOf[a] == t.domainOf[b]:
		return p.IntraDomainLatencyNs
	case t.socketOf[a] == t.socketOf[b]:
		return p.InterDomainLatencyNs
	default:
		return p.InterSocketLatencyNs
	}
}

// InterIntraRatio returns the ratio of inter- to intra-domain transfer
// latency (2.07 for the chiplet platforms, per Fig. 11).
func (t *Topology) InterIntraRatio() float64 {
	return t.platform.InterDomainLatencyNs / t.platform.IntraDomainLatencyNs
}

// VCPUMap assigns dense virtual CPU IDs to the physical CPUs an
// application actually runs on, mirroring the kernel's per-process virtual
// CPU ID space (rseq vcpu_id). Dense IDs keep the allocator from
// populating per-CPU caches for every CPU on ever-larger platforms.
type VCPUMap struct {
	// toVCPU is indexed by physical CPU (-1 = unassigned); a dense
	// slice, not a map — Assign sits on the per-op hot path and the
	// physical ID space is small and bounded by the topology.
	toVCPU   []int
	toPhys   []int
	topology *Topology
}

// NewVCPUMap creates an empty map over t.
func NewVCPUMap(t *Topology) *VCPUMap {
	m := &VCPUMap{toVCPU: make([]int, t.NumCPUs()), topology: t}
	for i := range m.toVCPU {
		m.toVCPU[i] = -1
	}
	return m
}

// Assign returns the dense vCPU ID for physical CPU phys, allocating the
// next free ID on first use. IDs are assigned in first-touch order, which
// biases low-indexed vCPUs toward the application's steady-state threads —
// the effect behind the per-vCPU miss disparity of Fig. 9b.
func (m *VCPUMap) Assign(phys int) int {
	if v := m.toVCPU[phys]; v >= 0 {
		return v
	}
	v := len(m.toPhys)
	m.toVCPU[phys] = v
	m.toPhys = append(m.toPhys, phys)
	return v
}

// Lookup returns the vCPU for phys without allocating.
func (m *VCPUMap) Lookup(phys int) (int, bool) {
	if phys < 0 || phys >= len(m.toVCPU) || m.toVCPU[phys] < 0 {
		return 0, false
	}
	return m.toVCPU[phys], true
}

// Physical returns the physical CPU backing vcpu.
func (m *VCPUMap) Physical(vcpu int) int { return m.toPhys[vcpu] }

// Len returns the number of populated vCPUs.
func (m *VCPUMap) Len() int { return len(m.toPhys) }

// DomainOfVCPU returns the LLC domain of the physical CPU backing vcpu.
func (m *VCPUMap) DomainOfVCPU(vcpu int) int {
	return m.topology.DomainOf(m.toPhys[vcpu])
}
