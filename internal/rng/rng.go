// Package rng provides deterministic pseudo-random number generation and
// the statistical distributions used to synthesize warehouse-scale
// allocation workloads.
//
// Every simulation in this repository must be reproducible from a single
// seed, so the package deliberately avoids math/rand's global state. The
// core generator is splitmix64 feeding a PCG-XSH-RR stream; both are tiny,
// fast, and well understood.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator (PCG-XSH-RR 64/32,
// extended to 64-bit outputs by pairing draws). It is not safe for
// concurrent use; give each goroutine its own stream via Split.
type RNG struct {
	state uint64
	inc   uint64

	// cached normal variate for the Box-Muller pair.
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.state = splitmix64(&sm)
	r.inc = splitmix64(&sm) | 1 // stream selector must be odd
	r.next32()
	return r
}

// Split derives a new, independent generator from r. The child stream is a
// deterministic function of r's current state, so splitting is itself
// reproducible.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *RNG) next32() uint32 {
	old := r.state
	r.state = old*6364136223846793005 + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	return uint64(r.next32())<<32 | uint64(r.next32())
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *RNG) Uint32() uint32 { return r.next32() }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Rejection sampling over the top of the range keeps the result exact.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box-Muller).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto returns a Pareto variate with scale xm > 0 and shape alpha > 0.
// The density is alpha*xm^alpha / x^(alpha+1) for x >= xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
