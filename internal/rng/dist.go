package rng

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws integers in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the CDF, so construction is O(n) and each
// draw is O(log n). Warehouse binary popularity and allocation-site
// popularity are both approximately Zipfian, which is what produces the
// "top 50 binaries cover only ~50% of malloc cycles" shape in Fig. 3.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(r *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: r}
}

// Draw returns the next rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	return searchCDF(z.cdf, u)
}

// Weights returns the probability mass of each rank.
func (z *Zipf) Weights() []float64 {
	w := make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		w[i] = c - prev
		prev = c
	}
	return w
}

// Dist is a sampler of float64 values; all workload size and lifetime
// models satisfy it.
type Dist interface {
	// Sample draws the next value using the provided generator.
	Sample(r *RNG) float64
}

// Constant is a Dist that always returns V.
type Constant float64

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return float64(c) }

// Uniform is a Dist over [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// LogNormalDist is a Dist with underlying normal (Mu, Sigma); values are
// optionally clamped to [Min, Max] when those bounds are non-zero.
type LogNormalDist struct {
	Mu, Sigma float64
	Min, Max  float64
}

// Sample implements Dist.
func (d LogNormalDist) Sample(r *RNG) float64 {
	v := r.LogNormal(d.Mu, d.Sigma)
	if d.Min != 0 && v < d.Min {
		v = d.Min
	}
	if d.Max != 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// ParetoDist is a Dist with scale Xm and shape Alpha, optionally capped at
// Max when Max > 0. Heavy-tailed object lifetimes are Pareto-like.
type ParetoDist struct {
	Xm, Alpha float64
	Max       float64
}

// Sample implements Dist.
func (d ParetoDist) Sample(r *RNG) float64 {
	v := r.Pareto(d.Xm, d.Alpha)
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// ExpDist is an exponential Dist with the given Mean.
type ExpDist struct{ Mean float64 }

// Sample implements Dist.
func (d ExpDist) Sample(r *RNG) float64 { return d.Mean * r.ExpFloat64() }

// Component is one branch of a Mixture.
type Component struct {
	Weight float64
	Dist   Dist
}

// Mixture is a weighted mixture of distributions. The fleet object-size
// distribution (Fig. 7) and the per-size-band lifetime distributions
// (Fig. 8) are modeled as mixtures.
type Mixture struct {
	components []Component
	cdf        []float64
}

// NewMixture builds a mixture; weights are normalized and must sum to a
// positive value.
func NewMixture(components ...Component) *Mixture {
	if len(components) == 0 {
		panic("rng: empty mixture")
	}
	total := 0.0
	for _, c := range components {
		if c.Weight < 0 {
			panic(fmt.Sprintf("rng: negative mixture weight %v", c.Weight))
		}
		total += c.Weight
	}
	if total <= 0 {
		panic("rng: mixture weights sum to zero")
	}
	m := &Mixture{components: components, cdf: make([]float64, len(components))}
	acc := 0.0
	for i, c := range components {
		acc += c.Weight / total
		m.cdf[i] = acc
	}
	return m
}

// Sample implements Dist.
func (m *Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	i := searchCDF(m.cdf, u)
	if i >= len(m.components) {
		i = len(m.components) - 1
	}
	return m.components[i].Dist.Sample(r)
}

// searchCDF returns the smallest index i with cdf[i] >= u, exactly as
// sort.SearchFloat64s does. Mixture and Discrete CDFs are a handful of
// entries, where a forward scan beats the binary search's unpredictable
// branches; long CDFs (Zipf ranks) still take the binary path.
func searchCDF(cdf []float64, u float64) int {
	if len(cdf) <= 8 {
		for i, c := range cdf {
			if c >= u {
				return i
			}
		}
		return len(cdf)
	}
	return sort.SearchFloat64s(cdf, u)
}

// Components returns the mixture branches (normalized weights).
func (m *Mixture) Components() []Component {
	out := make([]Component, len(m.components))
	prev := 0.0
	for i, c := range m.components {
		out[i] = Component{Weight: m.cdf[i] - prev, Dist: c.Dist}
		prev = m.cdf[i]
	}
	return out
}

// Discrete samples from an explicit finite distribution of (value, weight)
// pairs; used for size-class-aligned object size models.
type Discrete struct {
	values []float64
	cdf    []float64
}

// NewDiscrete builds a Discrete sampler. len(values) must equal
// len(weights) and weights must sum to a positive value.
func NewDiscrete(values, weights []float64) *Discrete {
	if len(values) != len(weights) || len(values) == 0 {
		panic("rng: mismatched discrete distribution")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative discrete weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: discrete weights sum to zero")
	}
	d := &Discrete{values: append([]float64(nil), values...), cdf: make([]float64, len(weights))}
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		d.cdf[i] = acc
	}
	return d
}

// Sample implements Dist.
func (d *Discrete) Sample(r *RNG) float64 {
	u := r.Float64()
	i := searchCDF(d.cdf, u)
	if i >= len(d.values) {
		i = len(d.values) - 1
	}
	return d.values[i]
}
