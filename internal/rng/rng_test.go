package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	matches := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split stream tracks parent: %d matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(11)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestUniformMean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v, want ~1", mean)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(17)
	const n = 100000
	xm, alpha := 2.0, 1.5
	below := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto value %v below scale %v", v, xm)
		}
		// P(X <= 2*xm) = 1 - 2^-alpha
		if v <= 2*xm {
			below++
		}
	}
	want := 1 - math.Pow(2, -alpha)
	got := float64(below) / n
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("Pareto CDF at 2xm: got %v want %v", got, want)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	f := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1000, 1.0)
	const n = 200000
	counts := make([]int, 1000)
	for i := 0; i < n; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d) not more popular than rank 10 (%d)", counts[0], counts[10])
	}
	// With s=1 over 1000 items, rank 0 holds ~13% of mass.
	if frac := float64(counts[0]) / n; frac < 0.10 || frac > 0.17 {
		t.Fatalf("rank-0 mass %v outside [0.10, 0.17]", frac)
	}
}

func TestZipfWeightsSumToOne(t *testing.T) {
	z := NewZipf(New(1), 50, 1.2)
	sum := 0.0
	for _, w := range z.Weights() {
		if w <= 0 {
			t.Fatal("non-positive zipf weight")
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum %v", sum)
	}
}

func TestMixtureSelectsAllComponents(t *testing.T) {
	r := New(37)
	m := NewMixture(
		Component{Weight: 1, Dist: Constant(1)},
		Component{Weight: 1, Dist: Constant(2)},
		Component{Weight: 2, Dist: Constant(3)},
	)
	counts := map[float64]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[m.Sample(r)]++
	}
	if len(counts) != 3 {
		t.Fatalf("expected 3 distinct outcomes, got %v", counts)
	}
	if p := float64(counts[3]) / n; math.Abs(p-0.5) > 0.02 {
		t.Fatalf("component-3 rate %v, want ~0.5", p)
	}
}

func TestMixtureComponentsNormalized(t *testing.T) {
	m := NewMixture(
		Component{Weight: 3, Dist: Constant(1)},
		Component{Weight: 1, Dist: Constant(2)},
	)
	comps := m.Components()
	if math.Abs(comps[0].Weight-0.75) > 1e-9 || math.Abs(comps[1].Weight-0.25) > 1e-9 {
		t.Fatalf("normalized weights wrong: %+v", comps)
	}
}

func TestDiscreteRespectsWeights(t *testing.T) {
	r := New(41)
	d := NewDiscrete([]float64{8, 16, 32}, []float64{8, 1, 1})
	const n = 50000
	counts := map[float64]int{}
	for i := 0; i < n; i++ {
		counts[d.Sample(r)]++
	}
	if p := float64(counts[8]) / n; math.Abs(p-0.8) > 0.02 {
		t.Fatalf("value 8 rate %v, want ~0.8", p)
	}
}

func TestLogNormalClamp(t *testing.T) {
	r := New(43)
	d := LogNormalDist{Mu: 5, Sigma: 3, Min: 8, Max: 1024}
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 8 || v > 1024 {
			t.Fatalf("clamped lognormal out of range: %v", v)
		}
	}
}

func TestParetoDistCap(t *testing.T) {
	r := New(47)
	d := ParetoDist{Xm: 1, Alpha: 0.5, Max: 100}
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v > 100 {
			t.Fatalf("capped pareto exceeded max: %v", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkMixtureSample(b *testing.B) {
	r := New(1)
	m := NewMixture(
		Component{Weight: 0.7, Dist: LogNormalDist{Mu: 4, Sigma: 1.5}},
		Component{Weight: 0.3, Dist: ParetoDist{Xm: 1024, Alpha: 1.1, Max: 1 << 30}},
	)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += m.Sample(r)
	}
	_ = sink
}
