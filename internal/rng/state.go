package rng

import "wsmalloc/internal/snapshot"

// EncodeState serializes the generator's full cursor: the PCG state and
// stream selector plus the cached Box-Muller variate, so a restored
// stream continues with exactly the draws the uninterrupted stream
// would have produced.
func (r *RNG) EncodeState(e *snapshot.Encoder) {
	e.Section("rng")
	e.U64(r.state)
	e.U64(r.inc)
	e.Bool(r.hasGauss)
	e.F64(r.gauss)
}

// DecodeState restores a cursor saved by EncodeState.
func (r *RNG) DecodeState(d *snapshot.Decoder) {
	d.Section("rng")
	r.state = d.U64()
	r.inc = d.U64()
	r.hasGauss = d.Bool()
	r.gauss = d.F64()
}
