package percpu

import (
	"testing"
)

// fakeBacking hands out sequential addresses and records traffic.
type fakeBacking struct {
	next    uint64
	outflow int64 // objects handed out
	inflow  int64 // objects returned
}

func (f *fakeBacking) Alloc(class, domain int, out []uint64) (int, error) {
	for i := range out {
		out[i] = f.next
		f.next++
	}
	f.outflow += int64(len(out))
	return len(out), nil
}

func (f *fakeBacking) Free(class, domain int, objs []uint64) {
	f.inflow += int64(len(objs))
}

const testClasses = 4

func sizes(class int) int   { return 64 << uint(class) } // 64,128,256,512
func batches(class int) int { return 8 }
func domain0(int) int       { return 0 }

func newCaches(cfg Config) (*Caches, *fakeBacking) {
	b := &fakeBacking{}
	return New(cfg, testClasses, sizes, batches, domain0, b), b
}

func TestAllocMissThenHits(t *testing.T) {
	c, b := newCaches(StaticConfig())
	a1, hit, _ := c.Alloc(0, 1)
	if hit {
		t.Fatal("first alloc cannot hit")
	}
	if b.outflow != 8 {
		t.Fatalf("refill fetched %d objects, want batch of 8", b.outflow)
	}
	for i := 0; i < 7; i++ {
		_, hit, _ := c.Alloc(0, 1)
		if !hit {
			t.Fatalf("alloc %d should hit the refilled cache", i)
		}
	}
	_, hit, _ = c.Alloc(0, 1)
	if hit {
		t.Fatal("ninth alloc should miss again")
	}
	_ = a1
	st := c.Stats()
	if st.AllocHits != 7 || st.AllocMisses != 2 {
		t.Fatalf("hits=%d misses=%d", st.AllocHits, st.AllocMisses)
	}
}

func TestFreeHitAndOverflow(t *testing.T) {
	cfg := StaticConfig()
	cfg.CapacityBytes = 64 * 10 // room for 10 class-0 objects
	c, b := newCaches(cfg)
	for i := 0; i < 10; i++ {
		if !c.Free(0, 0, uint64(1000+i)) {
			t.Fatalf("free %d should be absorbed", i)
		}
	}
	if c.Free(0, 0, 2000) {
		t.Fatal("free into full cache should spill")
	}
	// The spill pushes a batch (8): the new object plus 7 cached ones.
	if b.inflow != 8 {
		t.Fatalf("spill pushed %d objects, want 8", b.inflow)
	}
	st := c.Stats()
	if st.FreeMisses != 1 || st.FreeHits != 10 {
		t.Fatalf("freeHits=%d freeMisses=%d", st.FreeHits, st.FreeMisses)
	}
	if st.CachedBytes != 64*3 {
		t.Fatalf("CachedBytes = %d", st.CachedBytes)
	}
}

func TestLIFOReuse(t *testing.T) {
	c, _ := newCaches(StaticConfig())
	c.Free(0, 0, 42)
	addr, hit, _ := c.Alloc(0, 0)
	if !hit || addr != 42 {
		t.Fatalf("expected LIFO reuse of 42, got %d hit=%v", addr, hit)
	}
}

func TestCachesAreIndependentPerVCPU(t *testing.T) {
	c, _ := newCaches(StaticConfig())
	c.Free(3, 0, 42)
	if _, hit, _ := c.Alloc(1, 0); hit {
		t.Fatal("vCPU 1 must not see vCPU 3's objects")
	}
	if st := c.Stats(); st.PopulatedCaches != 2 {
		t.Fatalf("PopulatedCaches = %d", st.PopulatedCaches)
	}
}

func TestRefillRespectsCapacity(t *testing.T) {
	cfg := StaticConfig()
	cfg.CapacityBytes = 64 * 3 // room for only 3 class-0 objects
	c, b := newCaches(cfg)
	_, _, _ = c.Alloc(0, 0)
	// Batch is 8 but capacity is 3: fetch 1 returned + at most 2 cached.
	if b.outflow > 3 {
		t.Fatalf("refill fetched %d objects beyond capacity", b.outflow)
	}
	st := c.Stats()
	if st.CachedBytes > cfg.CapacityBytes {
		t.Fatalf("cache exceeds capacity: %d > %d", st.CachedBytes, cfg.CapacityBytes)
	}
}

func TestDrainReturnsEverything(t *testing.T) {
	c, b := newCaches(StaticConfig())
	for i := 0; i < 20; i++ {
		c.Free(0, i%3, uint64(5000+i))
	}
	c.DrainAll()
	if b.inflow != 20 {
		t.Fatalf("drain returned %d objects, want 20", b.inflow)
	}
	if st := c.Stats(); st.CachedBytes != 0 {
		t.Fatalf("CachedBytes after drain = %d", st.CachedBytes)
	}
}

func TestStaticNeverResizes(t *testing.T) {
	c, _ := newCaches(StaticConfig())
	c.Alloc(0, 0)
	c.Alloc(1, 0)
	if c.MaybeResize(10e9) {
		t.Fatal("static config must not resize")
	}
}

func TestHeterogeneousResizeMovesCapacity(t *testing.T) {
	cfg := HeterogeneousConfig()
	cfg.ResizeIntervalNs = 1
	c, _ := newCaches(cfg)
	// vCPU 0 misses a lot; vCPUs 1-8 are idle but populated (more than
	// TopK, so the resizer has victims to steal from).
	for v := 0; v < 9; v++ {
		c.Alloc(v, 0)
	}
	for i := 0; i < 50; i++ {
		c.Alloc(0, 3) // large class: each refill misses capacity quickly
		c.Alloc(0, 2)
	}
	before := c.Capacities()
	if !c.MaybeResize(100) {
		t.Fatal("resize pass should run")
	}
	after := c.Capacities()
	if after[0] <= before[0] {
		t.Fatalf("high-miss vCPU 0 capacity %d -> %d, want growth", before[0], after[0])
	}
	shrunk := false
	for v := 1; v < 9; v++ {
		if after[v] < before[v] {
			shrunk = true
		}
	}
	if !shrunk {
		t.Fatal("no idle cache was shrunk")
	}
	// Total capacity is conserved.
	var sumB, sumA int64
	for i := range before {
		sumB += before[i]
		sumA += after[i]
	}
	if sumB != sumA {
		t.Fatalf("capacity not conserved: %d -> %d", sumB, sumA)
	}
}

func TestResizeRespectsMinCapacity(t *testing.T) {
	cfg := HeterogeneousConfig()
	cfg.ResizeIntervalNs = 1
	cfg.StepBytes = 10 << 20 // try to steal far more than available
	c, _ := newCaches(cfg)
	for v := 0; v < 9; v++ {
		c.Alloc(v, 0)
	}
	for i := 0; i < 50; i++ {
		c.Alloc(0, 3)
	}
	c.MaybeResize(100)
	for v, cap := range c.Capacities() {
		if cap < cfg.MinCapacityBytes {
			t.Fatalf("vCPU %d capacity %d below floor %d", v, cap, cfg.MinCapacityBytes)
		}
	}
}

func TestResizeEvictsOverflow(t *testing.T) {
	cfg := HeterogeneousConfig()
	cfg.ResizeIntervalNs = 1
	cfg.CapacityBytes = 64 * 64 // 4 KiB
	cfg.MinCapacityBytes = 64 * 4
	cfg.StepBytes = 64 * 32
	c, b := newCaches(cfg)
	// Fill vCPU 1's cache to capacity with class-0 objects.
	for i := 0; i < 64; i++ {
		c.Free(1, 0, uint64(9000+i))
	}
	// vCPU 0 misses, stealing from vCPU 1.
	for i := 0; i < 20; i++ {
		c.Alloc(0, 3)
	}
	inflowBefore := b.inflow
	c.MaybeResize(100)
	if b.inflow <= inflowBefore {
		t.Fatal("shrinking a full cache must evict objects")
	}
	st := c.Stats()
	if st.CachedBytes > st.CapacityBytes {
		t.Fatalf("cached %d exceeds capacity %d after resize", st.CachedBytes, st.CapacityBytes)
	}
}

func TestMissCountsDisparity(t *testing.T) {
	c, _ := newCaches(StaticConfig())
	// vCPU 0 does lots of work, vCPU 5 a little (Fig. 9b shape).
	for i := 0; i < 100; i++ {
		a, _, _ := c.Alloc(0, 0)
		c.Free(0, 0, a)
		_, _, _ = c.Alloc(0, 3)
	}
	c.Alloc(5, 0)
	misses := c.MissCounts()
	if misses[0] <= misses[5] {
		t.Fatalf("miss disparity missing: %v", misses)
	}
}

func TestHeterogeneousReducesFootprintUnderSkew(t *testing.T) {
	// The Fig. 10 effect in miniature: a hot vCPU that fills its cache to
	// the bound holds half the memory under the heterogeneous layout
	// (1.5 MiB bound) than under the static one (3 MiB), while idle
	// vCPUs stay at their slow-start size in both.
	workload := func(c *Caches) {
		for v := 1; v < 8; v++ { // populate idle vCPUs
			a, _, _ := c.Alloc(v, 0)
			c.Free(v, 0, a)
		}
		// vCPU 0 frees far more class-3 (512 B) objects than any bound
		// can hold, growing its capacity to the limit.
		for i := 0; i < 20000; i++ {
			c.Free(0, 3, uint64(100000+i))
		}
		c.MaybeResize(6e9)
	}
	scfg := StaticConfig()
	scfg.PerClassBytesCap = 0 // exercise the whole-cache bound
	hcfg := HeterogeneousConfig()
	hcfg.PerClassBytesCap = 0
	stat, _ := newCaches(scfg)
	workload(stat)
	het, _ := newCaches(hcfg)
	workload(het)
	ss, hs := stat.Stats(), het.Stats()
	if hs.CachedBytes >= ss.CachedBytes {
		t.Fatalf("heterogeneous cached bytes %d should undercut static %d",
			hs.CachedBytes, ss.CachedBytes)
	}
}

func TestPerClassCapSpills(t *testing.T) {
	cfg := StaticConfig()
	cfg.PerClassBytesCap = 64 * 4 // 4 class-0 objects
	c, b := newCaches(cfg)
	for i := 0; i < 4; i++ {
		if !c.Free(0, 0, uint64(100+i)) {
			t.Fatalf("free %d should be absorbed", i)
		}
	}
	if c.Free(0, 0, 999) {
		t.Fatal("free beyond per-class cap must spill")
	}
	if b.inflow == 0 {
		t.Fatal("spill never reached backing")
	}
}

func TestSlowStartGrowth(t *testing.T) {
	cfg := StaticConfig()
	cfg.InitialCapacityBytes = 1 << 10
	cfg.GrowStepBytes = 1 << 10
	cfg.CapacityBytes = 4 << 10
	c, _ := newCaches(cfg)
	caps := func() int64 { return c.Capacities()[0] }
	c.Alloc(0, 0)
	first := caps()
	if first != 2<<10 { // initial 1K + one miss growth
		t.Fatalf("capacity after first miss = %d", first)
	}
	// Keep missing class 3 (512B, batch 8 = 4KiB > capacity): grows to
	// the bound and stops.
	for i := 0; i < 10; i++ {
		c.Alloc(0, 3)
	}
	if caps() != cfg.CapacityBytes {
		t.Fatalf("capacity should cap at bound: %d", caps())
	}
}

func TestMaybeDecayReclaimsIdleClasses(t *testing.T) {
	cfg := StaticConfig()
	cfg.DecayIntervalNs = 100
	c, b := newCaches(cfg)
	for i := 0; i < 8; i++ {
		c.Free(0, 0, uint64(500+i))
	}
	// First pass observes activity; nothing moves.
	if got := c.MaybeDecay(100); got != 0 {
		t.Fatalf("first decay moved %d", got)
	}
	// Second pass: idle since last -> half released.
	if got := c.MaybeDecay(200); got != 4 {
		t.Fatalf("second decay moved %d, want 4", got)
	}
	if b.inflow != 4 {
		t.Fatalf("backing received %d", b.inflow)
	}
	// Activity resets idleness.
	c.Free(0, 0, 999)
	if got := c.MaybeDecay(300); got != 0 {
		t.Fatalf("active class decayed %d", got)
	}
	// Fourth pass: idle again -> half of remaining 5.
	if got := c.MaybeDecay(400); got != 3 {
		t.Fatalf("fourth decay moved %d, want 3", got)
	}
}

func TestDecayDisabled(t *testing.T) {
	cfg := StaticConfig()
	cfg.DecayIntervalNs = 0
	c, _ := newCaches(cfg)
	c.Free(0, 0, 1)
	if c.MaybeDecay(1e12) != 0 {
		t.Fatal("disabled decay ran")
	}
}
