// Package percpu implements TCMalloc's front-end per-CPU caches (§2.1
// item 1, §4.1): per-virtual-CPU object stacks with a byte-capacity
// budget, indexed by the dense vCPU IDs the kernel's rseq extension
// provides. It supports the legacy statically-sized layout (3 MiB per
// vCPU) and the paper's heterogeneous design, where a background resizer
// periodically steals capacity from low-miss caches and grants it to the
// top-K highest-miss caches (Fig. 9b, Fig. 10).
package percpu

import (
	"fmt"

	"wsmalloc/internal/check"
	"wsmalloc/internal/telemetry"
)

// Backing is the middle tier (the transfer cache layer).
type Backing interface {
	// Alloc fills out with objects of a class for an LLC domain,
	// returning the count filled. A short fill is always accompanied by
	// the allocation error that caused it.
	Alloc(class, domain int, out []uint64) (int, error)
	// Free returns objects of a class freed by an LLC domain.
	Free(class, domain int, objs []uint64)
}

// Config controls the front-end.
type Config struct {
	// Heterogeneous enables usage-based dynamic cache sizing (§4.1).
	// It is the legacy selector for Resizer: when Resizer is nil, true
	// selects StealingResizer and false leaves the layout static.
	Heterogeneous bool
	// Resizer is the capacity policy run every ResizeIntervalNs. When
	// nil, the Heterogeneous boolean picks the built-in policy (the
	// policy registry sets both so the two stay in sync).
	Resizer Resizer
	// CapacityBytes is the per-vCPU cache bound. The paper uses 3 MiB
	// for the static design and halves it to 1.5 MiB with dynamic
	// resizing enabled. Caches start at InitialCapacityBytes and grow
	// toward the bound on misses (TCMalloc's slow start), so idle vCPUs
	// never hold the full budget.
	CapacityBytes int64
	// InitialCapacityBytes is the starting per-vCPU capacity.
	InitialCapacityBytes int64
	// GrowStepBytes is how much a miss grows the capacity (up to the
	// CapacityBytes bound).
	GrowStepBytes int64
	// MinCapacityBytes bounds how far the resizer may shrink a cache.
	MinCapacityBytes int64
	// ResizeIntervalNs is the period of the background resizer. The
	// paper uses 5 s of wall time; simulation runs compress hours into
	// hundreds of milliseconds, so the default is 10 ms of virtual time.
	ResizeIntervalNs int64
	// TopK is how many highest-miss caches grow per resize interval.
	TopK int
	// StepBytes is the capacity moved per steal.
	StepBytes int64
	// PerClassBytesCap bounds how many bytes of one size class a single
	// vCPU cache may hold (TCMalloc bounds per-class capacity so one
	// class cannot monopolize the slab). Zero disables the cap.
	PerClassBytesCap int64
	// DecayIntervalNs is the period of the idle-class reclaim
	// (TCMalloc's per-CPU cache shuffle): a class slot with no activity
	// since the previous pass returns half its objects to the middle
	// tier, so stack bottoms do not pin spans forever. Zero disables.
	DecayIntervalNs int64
}

// StaticConfig is the legacy front-end: fixed 3 MiB per vCPU.
func StaticConfig() Config {
	return Config{
		CapacityBytes:        3 << 20,
		InitialCapacityBytes: 256 << 10,
		GrowStepBytes:        64 << 10,
		MinCapacityBytes:     128 << 10,
		ResizeIntervalNs:     10e6,
		TopK:                 5,
		StepBytes:            256 << 10,
		PerClassBytesCap:     96 << 10,
		DecayIntervalNs:      20e6,
	}
}

// HeterogeneousConfig is the paper's redesign: dynamic sizing with the
// default halved to 1.5 MiB.
func HeterogeneousConfig() Config {
	c := StaticConfig()
	c.Heterogeneous = true
	c.CapacityBytes = 3 << 19 // 1.5 MiB
	return c
}

// cpuCache is the cache of one virtual CPU.
type cpuCache struct {
	slots    [][]uint64
	used     int64
	capacity int64
	// bound is the maximum capacity slow-start growth may reach.
	bound int64
	// domain caches domainOf(vcpu): the vCPU→physical mapping is fixed
	// once the vCPU is assigned, so the hot paths skip the closure call.
	domain int

	allocHits, allocMisses int64
	freeHits, freeMisses   int64
	missWindow             int64
	// missEWMA is EWMAResizer's smoothed per-window miss rate; unused by
	// the other policies.
	missEWMA float64

	// classOps and classOpsAtDecay drive idle-class reclaim.
	classOps        []int64
	classOpsAtDecay []int64
}

// Stats summarizes the front-end.
type Stats struct {
	// PopulatedCaches is the number of vCPU caches in use.
	PopulatedCaches int
	// CachedBytes is memory held across all per-CPU caches (front-end
	// external fragmentation, Fig. 6b).
	CachedBytes int64
	// CapacityBytes is the summed capacity of populated caches.
	CapacityBytes int64
	// AllocHits/AllocMisses count fast-path allocations vs underflows.
	AllocHits, AllocMisses int64
	// FreeHits/FreeMisses count fast-path frees vs overflow spills.
	FreeHits, FreeMisses int64
	// Resizes counts capacity-steal operations performed.
	Resizes int64
}

// Caches is the front-end layer across all vCPUs.
type Caches struct {
	cfg        Config
	numClasses int
	domainOf   func(vcpu int) int
	backing    Backing
	resizer    Resizer

	// sizes and batches are the per-class tables precomputed from the
	// wiring functions at construction, so the per-operation paths cost
	// an index load instead of a closure call.
	sizes   []int
	batches []int

	caches []*cpuCache

	// xferBuf is the scratch buffer for refills and spills. The backing
	// tiers copy object addresses out of (or into) the slice during the
	// call and retain nothing, so one buffer serves every miss.
	xferBuf []uint64

	lastResize  int64
	lastDecay   int64
	stealCursor int
	resizes     int64

	tel *telemetry.Sink
}

// SetTelemetry installs the telemetry sink (nil disables; every event
// call site then costs one branch).
func (c *Caches) SetTelemetry(s *telemetry.Sink) { c.tel = s }

// New creates the front-end. domainOf maps a vCPU to its LLC domain for
// middle-tier calls.
func New(cfg Config, numClasses int, objSize, batchSize func(int) int,
	domainOf func(int) int, backing Backing) *Caches {
	if cfg.CapacityBytes <= 0 {
		panic("percpu: non-positive capacity")
	}
	sizes := make([]int, numClasses)
	batches := make([]int, numClasses)
	for i := 0; i < numClasses; i++ {
		sizes[i] = objSize(i)
		batches[i] = batchSize(i)
	}
	return &Caches{
		cfg:        cfg,
		numClasses: numClasses,
		sizes:      sizes,
		batches:    batches,
		domainOf:   domainOf,
		backing:    backing,
		resizer:    resolveResizer(cfg),
	}
}

// Swap retunes the front-end to a new configuration mid-run: every
// populated cache is drained to the middle tier, the resizer policy and
// the construction-time-derived capacity state (slow-start bound,
// initial capacity, miss window) are re-derived from cfg, and the
// cumulative hit/miss counters carry over. The per-class size and batch
// tables derive from the wiring functions, not the config, so they
// survive unchanged. A Swap on a freshly constructed front-end is
// indistinguishable from construction with cfg.
func (c *Caches) Swap(cfg Config) {
	if cfg.CapacityBytes <= 0 {
		panic("percpu: non-positive capacity")
	}
	c.DrainAll()
	c.cfg = cfg
	c.resizer = resolveResizer(cfg)
	initial := cfg.InitialCapacityBytes
	if initial <= 0 || initial > cfg.CapacityBytes {
		initial = cfg.CapacityBytes
	}
	for _, cc := range c.caches {
		if cc == nil {
			continue
		}
		// Restart slow start under the new budget. Resetting bound (not
		// just capacity) restores the conservation invariant the resizer
		// relies on: summed bound == populated caches × CapacityBytes.
		cc.capacity = initial
		cc.bound = cfg.CapacityBytes
		cc.missWindow = 0
		cc.missEWMA = 0
	}
}

func (c *Caches) cache(vcpu int) *cpuCache {
	if vcpu < len(c.caches) {
		if cc := c.caches[vcpu]; cc != nil {
			return cc
		}
	}
	return c.cacheSlow(vcpu)
}

func (c *Caches) cacheSlow(vcpu int) *cpuCache {
	for vcpu >= len(c.caches) {
		c.caches = append(c.caches, nil)
	}
	if c.caches[vcpu] == nil {
		initial := c.cfg.InitialCapacityBytes
		if initial <= 0 || initial > c.cfg.CapacityBytes {
			initial = c.cfg.CapacityBytes
		}
		c.caches[vcpu] = &cpuCache{
			slots:           make([][]uint64, c.numClasses),
			capacity:        initial,
			bound:           c.cfg.CapacityBytes,
			domain:          c.domainOf(vcpu),
			classOps:        make([]int64, c.numClasses),
			classOpsAtDecay: make([]int64, c.numClasses),
		}
	}
	return c.caches[vcpu]
}

// Alloc returns one object of the given class for a thread running on
// vcpu. hit reports whether the fast path (cache) served it. When the
// refill batch comes back short but non-empty, the request still
// succeeds (the shortfall only thins the cache); only a completely
// failed refill surfaces the middle tier's error.
func (c *Caches) Alloc(vcpu, class int) (addr uint64, hit bool, err error) {
	cc := c.cache(vcpu)
	cc.classOps[class]++
	if s := cc.slots[class]; len(s) > 0 {
		addr = s[len(s)-1]
		cc.slots[class] = s[:len(s)-1]
		cc.used -= int64(c.sizes[class])
		cc.allocHits++
		return addr, true, nil
	}
	// Underflow: refill a batch from the middle tier, growing the
	// capacity toward its bound (slow start).
	cc.allocMisses++
	cc.missWindow++
	c.tel.Event(telemetry.EvPerCPUMiss, int64(vcpu), int64(class))
	c.grow(cc)
	batch := c.batches[class]
	size := int64(c.sizes[class])
	// Keep the refill within the capacity budget and the per-class cap
	// (always at least one object).
	if room := (cc.capacity - cc.used) / size; room < int64(batch) {
		batch = int(room)
	}
	if cap := c.cfg.PerClassBytesCap; cap > 0 {
		if room := int(cap/size) - len(cc.slots[class]); room < batch {
			batch = room
		}
	}
	if batch < 1 {
		batch = 1
	}
	buf := c.scratch(batch)
	n, err := c.backing.Alloc(class, cc.domain, buf)
	if n == 0 {
		return 0, false, err
	}
	addr = buf[0]
	if n > 1 {
		cc.slots[class] = append(cc.slots[class], buf[1:n]...)
		cc.used += int64(n-1) * size
	}
	return addr, false, nil
}

// Free returns one object of the given class from a thread on vcpu. hit
// reports whether the cache absorbed it without spilling.
func (c *Caches) Free(vcpu, class int, addr uint64) (hit bool) {
	cc := c.cache(vcpu)
	cc.classOps[class]++
	size := int64(c.sizes[class])
	if cap := c.cfg.PerClassBytesCap; cap > 0 &&
		(int64(len(cc.slots[class]))+1)*size > cap {
		// Per-class cap reached: spill a batch of this class.
		cc.freeMisses++
		cc.missWindow++
		c.tel.Event(telemetry.EvPerCPUMiss, int64(vcpu), int64(class))
		c.spill(cc, vcpu, class, addr)
		return false
	}
	if cc.used+size > cc.capacity {
		// Overflow: grow toward the bound; if the object still does not
		// fit, spill a batch of this class (including addr).
		cc.freeMisses++
		cc.missWindow++
		c.tel.Event(telemetry.EvPerCPUMiss, int64(vcpu), int64(class))
		c.grow(cc)
		if cc.used+size > cc.capacity {
			c.spill(cc, vcpu, class, addr)
			return false
		}
		cc.slots[class] = append(cc.slots[class], addr)
		cc.used += size
		return false
	}
	cc.slots[class] = append(cc.slots[class], addr)
	cc.used += size
	cc.freeHits++
	return true
}

// scratch returns the shared transfer buffer grown to n slots. Callers
// must finish with the slice before the next scratch call; the backing
// tiers never retain it.
func (c *Caches) scratch(n int) []uint64 {
	if cap(c.xferBuf) < n {
		c.xferBuf = make([]uint64, n)
	}
	return c.xferBuf[:n]
}

// spill pushes addr plus up to batch-1 cached objects of class to the
// middle tier.
func (c *Caches) spill(cc *cpuCache, vcpu, class int, addr uint64) {
	batch := c.batches[class]
	s := cc.slots[class]
	take := batch - 1
	if take > len(s) {
		take = len(s)
	}
	objs := c.scratch(take + 1)
	objs[0] = addr
	copy(objs[1:], s[len(s)-take:])
	cc.slots[class] = s[:len(s)-take]
	cc.used -= int64(take) * int64(c.sizes[class])
	c.backing.Free(class, cc.domain, objs)
}

// grow raises a cache's capacity by one slow-start step, capped at the
// bound.
func (c *Caches) grow(cc *cpuCache) {
	if c.cfg.GrowStepBytes <= 0 || cc.capacity >= cc.bound {
		return
	}
	cc.capacity += c.cfg.GrowStepBytes
	if cc.capacity > cc.bound {
		cc.capacity = cc.bound
	}
}

// MaybeDecay runs the idle-class reclaim if the interval elapsed: every
// (vcpu, class) slot untouched since the previous pass returns half its
// objects to the middle tier. Returns the number of objects released.
func (c *Caches) MaybeDecay(now int64) int {
	if c.cfg.DecayIntervalNs <= 0 || now-c.lastDecay < c.cfg.DecayIntervalNs {
		return 0
	}
	c.lastDecay = now
	released := 0
	for vcpu, cc := range c.caches {
		if cc == nil {
			continue
		}
		for class := 0; class < c.numClasses; class++ {
			idle := cc.classOps[class] == cc.classOpsAtDecay[class]
			cc.classOpsAtDecay[class] = cc.classOps[class]
			if !idle || len(cc.slots[class]) == 0 {
				continue
			}
			s := cc.slots[class]
			drop := (len(s) + 1) / 2
			objs := c.scratch(drop)
			copy(objs, s[len(s)-drop:])
			cc.slots[class] = s[:len(s)-drop]
			cc.used -= int64(drop) * int64(c.sizes[class])
			c.tel.Event(telemetry.EvPerCPUDecay, int64(vcpu), int64(drop))
			c.backing.Free(class, cc.domain, objs)
			released += drop
		}
	}
	return released
}

// MaybeResize runs the configured capacity policy if the interval
// elapsed. now is simulation time in nanoseconds. Returns whether a
// resize pass ran; statically-sized front-ends (no resizer) never run
// one.
func (c *Caches) MaybeResize(now int64) bool {
	if c.resizer == nil || now-c.lastResize < c.cfg.ResizeIntervalNs {
		return false
	}
	c.lastResize = now
	c.resizer.Resize(c)
	return true
}

// evictToCapacity sheds objects (largest size classes first, since most
// allocations are small, §4.1) until the cache fits its capacity.
func (c *Caches) evictToCapacity(cc *cpuCache, vcpu int) {
	for class := c.numClasses - 1; class >= 0 && cc.used > cc.capacity; class-- {
		size := int64(c.sizes[class])
		for len(cc.slots[class]) > 0 && cc.used > cc.capacity {
			batch := c.batches[class]
			s := cc.slots[class]
			if batch > len(s) {
				batch = len(s)
			}
			objs := c.scratch(batch)
			copy(objs, s[len(s)-batch:])
			cc.slots[class] = s[:len(s)-batch]
			cc.used -= int64(batch) * size
			c.backing.Free(class, cc.domain, objs)
		}
	}
}

// Drain evicts every object of a vCPU cache back to the middle tier
// (e.g. when the control plane deschedules the application from a CPU).
func (c *Caches) Drain(vcpu int) {
	if vcpu >= len(c.caches) || c.caches[vcpu] == nil {
		return
	}
	cc := c.caches[vcpu]
	for class := 0; class < c.numClasses; class++ {
		if len(cc.slots[class]) == 0 {
			continue
		}
		c.backing.Free(class, cc.domain, cc.slots[class])
		cc.used -= int64(len(cc.slots[class])) * int64(c.sizes[class])
		cc.slots[class] = nil
	}
	if cc.used != 0 {
		panic(fmt.Sprintf("percpu: drain accounting mismatch: %d bytes", cc.used))
	}
}

// DrainAll drains every populated cache.
func (c *Caches) DrainAll() {
	for v := range c.caches {
		c.Drain(v)
	}
}

// MissCounts returns total (alloc+free) misses per vCPU — Fig. 9b's
// disparity metric.
func (c *Caches) MissCounts() []int64 {
	out := make([]int64, len(c.caches))
	for i, cc := range c.caches {
		if cc != nil {
			out[i] = cc.allocMisses + cc.freeMisses
		}
	}
	return out
}

// CachedBytesByClass returns the bytes cached per size class, summed
// across every populated vCPU cache — the front-end column of the
// per-class fragmentation table in the pageheapz report.
func (c *Caches) CachedBytesByClass() []int64 {
	out := make([]int64, c.numClasses)
	for _, cc := range c.caches {
		if cc == nil {
			continue
		}
		for class, s := range cc.slots {
			out[class] += int64(len(s)) * int64(c.sizes[class])
		}
	}
	return out
}

// Capacities returns the current capacity of each populated vCPU cache.
func (c *Caches) Capacities() []int64 {
	out := make([]int64, len(c.caches))
	for i, cc := range c.caches {
		if cc != nil {
			out[i] = cc.capacity
		}
	}
	return out
}

// CheckInvariants audits the front-end: each populated cache's used-byte
// counter against a recount of its slots, usage within capacity, and
// capacity within the cache's slow-start bound. The heterogeneous
// resizer (§4.1) relocates bound together with capacity, so per-cache
// capacity ≤ bound holds in both designs and the summed bound is
// conserved at one configured budget per populated vCPU — capacity can
// move, never be created.
func (c *Caches) CheckInvariants() []check.Violation {
	var vs []check.Violation
	var boundTotal, populated int64
	for vcpu, cc := range c.caches {
		if cc == nil {
			continue
		}
		var recount int64
		for class := 0; class < c.numClasses; class++ {
			recount += int64(len(cc.slots[class])) * int64(c.sizes[class])
		}
		if recount != cc.used {
			vs = append(vs, check.Violationf("percpu", check.KindAccounting,
				"vcpu %d used-byte counter %d disagrees with slot recount %d",
				vcpu, cc.used, recount))
		}
		if cc.used > cc.capacity {
			vs = append(vs, check.Violationf("percpu", check.KindStructure,
				"vcpu %d cache holds %d bytes above its %d-byte capacity",
				vcpu, cc.used, cc.capacity))
		}
		if cc.capacity > cc.bound {
			vs = append(vs, check.Violationf("percpu", check.KindStructure,
				"vcpu %d capacity %d exceeds its bound %d", vcpu, cc.capacity, cc.bound))
		}
		boundTotal += cc.bound
		populated++
	}
	if want := populated * c.cfg.CapacityBytes; boundTotal != want {
		vs = append(vs, check.Violationf("percpu", check.KindConservation,
			"summed capacity bound %d differs from the configured budget %d (%d caches x %d)",
			boundTotal, want, populated, c.cfg.CapacityBytes))
	}
	return vs
}

// CorruptUsedForTest skews the used-byte counter of one vCPU cache. It
// exists solely so the corruption self-test can prove the auditor
// detects front-end accounting drift; production code never calls it.
func (c *Caches) CorruptUsedForTest(vcpu int, delta int64) {
	c.cache(vcpu).used += delta
}

// Stats returns a snapshot.
func (c *Caches) Stats() Stats {
	var s Stats
	s.Resizes = c.resizes
	for _, cc := range c.caches {
		if cc == nil {
			continue
		}
		s.PopulatedCaches++
		s.CachedBytes += cc.used
		s.CapacityBytes += cc.capacity
		s.AllocHits += cc.allocHits
		s.AllocMisses += cc.allocMisses
		s.FreeHits += cc.freeHits
		s.FreeMisses += cc.freeMisses
	}
	return s
}
