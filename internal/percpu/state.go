package percpu

import "wsmalloc/internal/snapshot"

// EncodeState serializes the front-end: every populated vCPU cache's
// object stacks (in LIFO order), capacity/slow-start state, hit/miss
// counters, and the resizer cursors. Config and the wiring functions
// are not serialized — the restored Caches must be built by New with
// the same Config before DecodeState overlays the mutable state.
func (c *Caches) EncodeState(e *snapshot.Encoder) {
	e.Section("percpu")
	e.I64(c.lastResize)
	e.I64(c.lastDecay)
	e.Int(c.stealCursor)
	e.I64(c.resizes)
	e.Len(len(c.caches))
	for _, cc := range c.caches {
		e.Bool(cc != nil)
		if cc == nil {
			continue
		}
		e.I64(cc.used)
		e.I64(cc.capacity)
		e.I64(cc.bound)
		e.I64(cc.allocHits)
		e.I64(cc.allocMisses)
		e.I64(cc.freeHits)
		e.I64(cc.freeMisses)
		e.I64(cc.missWindow)
		e.F64(cc.missEWMA)
		for class := 0; class < c.numClasses; class++ {
			e.Len(len(cc.slots[class]))
			for _, addr := range cc.slots[class] {
				e.U64(addr)
			}
			e.I64(cc.classOps[class])
			e.I64(cc.classOpsAtDecay[class])
		}
	}
}

// DecodeState restores state saved by EncodeState into a freshly
// constructed Caches with the same Config.
func (c *Caches) DecodeState(d *snapshot.Decoder) {
	d.Section("percpu")
	c.lastResize = d.I64()
	c.lastDecay = d.I64()
	c.stealCursor = d.Int()
	c.resizes = d.I64()
	n := d.Len(1)
	c.caches = make([]*cpuCache, n)
	for i := 0; i < n; i++ {
		if !d.Bool() {
			continue
		}
		cc := &cpuCache{
			slots: make([][]uint64, c.numClasses),
			// The cached domain is derived state: recompute it from the
			// wiring function rather than widening the codec.
			domain:          c.domainOf(i),
			classOps:        make([]int64, c.numClasses),
			classOpsAtDecay: make([]int64, c.numClasses),
		}
		cc.used = d.I64()
		cc.capacity = d.I64()
		cc.bound = d.I64()
		cc.allocHits = d.I64()
		cc.allocMisses = d.I64()
		cc.freeHits = d.I64()
		cc.freeMisses = d.I64()
		cc.missWindow = d.I64()
		cc.missEWMA = d.F64()
		for class := 0; class < c.numClasses; class++ {
			m := d.Len(8)
			if d.Err() != nil {
				return
			}
			if m > 0 {
				s := make([]uint64, m)
				for j := range s {
					s[j] = d.U64()
				}
				cc.slots[class] = s
			}
			cc.classOps[class] = d.I64()
			cc.classOpsAtDecay[class] = d.I64()
		}
		if d.Err() != nil {
			return
		}
		c.caches[i] = cc
	}
}
