package percpu

import (
	"sort"

	"wsmalloc/internal/telemetry"
)

// Resizer is the front-end capacity policy: a periodic pass that may move
// cache capacity between vCPUs. Implementations must be stateless value
// types — core.Config is copied freely across fleet arms and goroutines,
// so any per-cache state belongs on cpuCache, not on the policy.
type Resizer interface {
	// Resize runs one policy pass over the populated caches. The pass
	// must conserve the summed slow-start bound (capacity may move,
	// never be created); CheckInvariants enforces this.
	Resize(c *Caches)
}

// resolveResizer maps a config to its effective policy: an explicit
// Resizer wins, otherwise the legacy Heterogeneous boolean selects the
// stealing policy, otherwise the front-end is statically sized and no
// pass ever runs (nil).
func resolveResizer(cfg Config) Resizer {
	if cfg.Resizer != nil {
		return cfg.Resizer
	}
	if cfg.Heterogeneous {
		return StealingResizer{}
	}
	return nil
}

// StealingResizer is the paper's heterogeneous policy (§4.1): the TopK
// caches with the most misses in the last window grow with capacity
// stolen round-robin from the rest.
type StealingResizer struct{}

// Resize implements Resizer.
func (StealingResizer) Resize(c *Caches) {
	type cand struct {
		idx    int
		misses int64
	}
	var pop []cand
	for i, cc := range c.caches {
		if cc != nil {
			pop = append(pop, cand{i, cc.missWindow})
		}
	}
	if len(pop) < 2 {
		for _, p := range pop {
			c.caches[p.idx].missWindow = 0
		}
		return
	}
	// Top K by window misses; caches with no misses never grow.
	ranked := append([]cand(nil), pop...)
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].misses > ranked[j].misses })
	k := c.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	grow := map[int]bool{}
	var growList []int
	for _, p := range ranked[:k] {
		if p.misses > 0 {
			grow[p.idx] = true
			growList = append(growList, p.idx)
		}
	}
	victims := make([]int, len(pop))
	for i, p := range pop {
		victims[i] = p.idx
	}
	c.stealRoundRobin(victims, grow, growList)
	for _, p := range pop {
		c.caches[p.idx].missWindow = 0
	}
}

// EWMAResizer ranks caches by an exponentially-weighted moving average of
// their per-window misses instead of the instantaneous window, so a
// single bursty interval cannot flip the grow set and capacity follows
// sustained demand. Steal mechanics are shared with StealingResizer.
type EWMAResizer struct {
	// Alpha is the EWMA smoothing factor in (0, 1]; zero means 0.3.
	Alpha float64
}

func (r EWMAResizer) alpha() float64 {
	if r.Alpha > 0 {
		return r.Alpha
	}
	return 0.3
}

// Resize implements Resizer.
func (r EWMAResizer) Resize(c *Caches) {
	alpha := r.alpha()
	type cand struct {
		idx  int
		ewma float64
	}
	var pop []cand
	for i, cc := range c.caches {
		if cc == nil {
			continue
		}
		cc.missEWMA = alpha*float64(cc.missWindow) + (1-alpha)*cc.missEWMA
		pop = append(pop, cand{i, cc.missEWMA})
	}
	if len(pop) < 2 {
		for _, p := range pop {
			c.caches[p.idx].missWindow = 0
		}
		return
	}
	// Rank by smoothed misses, breaking ties by vCPU index so the grow
	// set is deterministic.
	ranked := append([]cand(nil), pop...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].ewma != ranked[j].ewma {
			return ranked[i].ewma > ranked[j].ewma
		}
		return ranked[i].idx < ranked[j].idx
	})
	k := c.cfg.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	grow := map[int]bool{}
	var growList []int
	for _, p := range ranked[:k] {
		if p.ewma > 0 {
			grow[p.idx] = true
			growList = append(growList, p.idx)
		}
	}
	victims := make([]int, len(pop))
	for i, p := range pop {
		victims[i] = p.idx
	}
	c.stealRoundRobin(victims, grow, growList)
	for _, p := range pop {
		c.caches[p.idx].missWindow = 0
	}
}

// stealRoundRobin moves up to StepBytes of capacity to each grow target,
// taken round-robin from the remaining populated caches (the shared
// mechanics of every stealing policy): the slow-start bound relocates
// with the capacity so the summed bound is conserved, and victims evict
// down to their shrunken capacity immediately.
func (c *Caches) stealRoundRobin(victims []int, grow map[int]bool, growList []int) {
	for _, target := range growList {
		moved := int64(0)
		for scan := 0; scan < len(victims) && moved < c.cfg.StepBytes; scan++ {
			c.stealCursor = (c.stealCursor + 1) % len(victims)
			victim := victims[c.stealCursor]
			if grow[victim] {
				continue
			}
			vc := c.caches[victim]
			avail := vc.capacity - c.cfg.MinCapacityBytes
			if avail <= 0 {
				continue
			}
			step := c.cfg.StepBytes - moved
			if step > avail {
				step = avail
			}
			// Move the slow-start bound together with the capacity:
			// otherwise the victim regrows its loss on later misses
			// while the target keeps the stolen excess, inflating the
			// summed capacity past the configured budget.
			vc.capacity -= step
			vc.bound -= step
			c.evictToCapacity(vc, victim)
			c.caches[target].capacity += step
			c.caches[target].bound += step
			moved += step
			c.resizes++
			c.tel.Event(telemetry.EvPerCPUSteal, int64(victim), step)
		}
	}
}
