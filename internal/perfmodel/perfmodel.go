// Package perfmodel provides the analytic CPU performance model that
// converts allocator telemetry into the hardware metrics the paper
// reports: LLC load MPKI (Table 1), dTLB load-walk cycle share and CPI
// (Table 2), and application throughput. The paper measures these with
// hardware counters on production machines; this package substitutes a
// top-down stall model (Yasin-style) whose locality terms are driven by
// the simulated allocator:
//
//   - inter-domain object reuse (from the transfer cache's provenance
//     tracking) inflates LLC misses — the effect NUCA-aware transfer
//     caches remove (§4.2);
//   - hugepage coverage (from the pageheap) deflates dTLB walks — the
//     effect the lifetime-aware filler improves (§4.4);
//   - allocator cache footprint adds LLC pressure;
//   - malloc time itself is added to per-operation work.
//
// The constants are calibrated against the paper's fleet baselines
// (LLC 2.52 MPKI, dTLB walk 9.16% at 54.4% hugepage coverage, 17.05%
// back-end-stall share) so that the *relative* movements match Tables 1
// and 2; DESIGN.md documents the substitution.
package perfmodel

import "math"

// Params are the model constants.
type Params struct {
	// BaseCPI is the no-stall core CPI.
	BaseCPI float64
	// LLCMissPenaltyCycles is the average stall per LLC load miss.
	LLCMissPenaltyCycles float64
	// InterDomainMPKIBoost scales how strongly cross-LLC-domain object
	// reuse inflates the LLC miss rate: an object freed in one domain
	// and reallocated in another drags its cache lines across domains
	// (Fig. 11's 2.07x transfer cost appears as extra misses).
	InterDomainMPKIBoost float64
	// CacheFootprintMPKIBoost prices allocator-cached bytes competing
	// with the application working set in the LLC, per MiB.
	CacheFootprintMPKIBoost float64
	// WalkSensitivity is the exponential sensitivity of dTLB walk cycles
	// to hugepage coverage, fit to the paper's (54.4%, 9.16%) ->
	// (56.2%, 6.22%) pair in Table 2 / Fig. 17.
	WalkSensitivity float64
	// RefCoverage and RefWalkPct anchor the dTLB fit.
	RefCoverage, RefWalkPct float64
	// InstructionsPerOp converts workload operations to instructions for
	// MPKI bookkeeping.
	InstructionsPerOp float64
}

// DefaultParams returns the paper-calibrated constants.
func DefaultParams() Params {
	return Params{
		BaseCPI:                 0.62,
		LLCMissPenaltyCycles:    40,
		InterDomainMPKIBoost:    0.25,
		CacheFootprintMPKIBoost: 0.0005,
		// ln(9.16/6.22)/(0.562-0.544) ≈ 21.5
		WalkSensitivity:   21.5,
		RefCoverage:       0.544,
		RefWalkPct:        9.16,
		InstructionsPerOp: 12000,
	}
}

// Inputs are the per-run quantities the model consumes.
type Inputs struct {
	// BaseMPKI is the application's intrinsic LLC load MPKI (Table 1
	// "Before" column for the baseline configuration).
	BaseMPKI float64
	// InterDomainShare is the fraction of cache-tier object reuse that
	// crossed LLC domains (transfercache stats: Inter/(Inter+Intra)).
	InterDomainShare float64
	// AllocatorCacheBytes is the allocator-held footprint (front-end +
	// transfer caches).
	AllocatorCacheBytes int64
	// HugepageCoverage is the fraction of in-use heap on intact
	// hugepages.
	HugepageCoverage float64
	// MallocTimeShare is the fraction of CPU time in the allocator.
	MallocTimeShare float64
	// Ops and DurationNs describe the measured workload run.
	Ops        int64
	DurationNs int64
}

// Metrics are the model outputs, matching the columns of Tables 1 and 2.
type Metrics struct {
	// LLCLoadMPKI is LLC load misses per kilo-instruction.
	LLCLoadMPKI float64
	// DTLBWalkPct is the percentage of cycles spent in dTLB page walks.
	DTLBWalkPct float64
	// CPI is cycles per instruction including stall terms.
	CPI float64
	// ThroughputIndex is proportional to application productivity
	// (operations per CPU-cycle); compare across configurations of the
	// same workload.
	ThroughputIndex float64
}

// Evaluate runs the model.
func Evaluate(p Params, in Inputs) Metrics {
	mpki := in.BaseMPKI * (1 + p.InterDomainMPKIBoost*in.InterDomainShare)
	mpki += p.CacheFootprintMPKIBoost * float64(in.AllocatorCacheBytes) / (1 << 20)

	walk := p.RefWalkPct * math.Exp(-p.WalkSensitivity*(in.HugepageCoverage-p.RefCoverage))
	if walk > 60 {
		walk = 60
	}

	// Top-down CPI: base + LLC stall term, then inflated by the dTLB
	// walk share (walk cycles are pure overhead on every cycle).
	cpi := p.BaseCPI + mpki/1000*p.LLCMissPenaltyCycles
	cpi *= 1 + walk/100

	// Productivity: useful operations per cycle spent. Cycles per op =
	// instructions*CPI inflated by the malloc time share.
	cyclesPerOp := p.InstructionsPerOp * cpi
	if in.MallocTimeShare > 0 && in.MallocTimeShare < 1 {
		cyclesPerOp /= 1 - in.MallocTimeShare
	}
	return Metrics{
		LLCLoadMPKI:     mpki,
		DTLBWalkPct:     walk,
		CPI:             cpi,
		ThroughputIndex: 1e6 / cyclesPerOp,
	}
}

// Delta compares an experiment configuration against a control, returning
// the percentage changes the paper's tables report.
type Delta struct {
	ThroughputPct float64
	CPIPct        float64
	LLCBefore     float64
	LLCAfter      float64
	WalkBeforePct float64
	WalkAfterPct  float64
}

// Compare evaluates control and experiment inputs under the same params.
func Compare(p Params, control, experiment Inputs) Delta {
	c := Evaluate(p, control)
	e := Evaluate(p, experiment)
	return Delta{
		ThroughputPct: pct(e.ThroughputIndex, c.ThroughputIndex),
		CPIPct:        pct(e.CPI, c.CPI),
		LLCBefore:     c.LLCLoadMPKI,
		LLCAfter:      e.LLCLoadMPKI,
		WalkBeforePct: c.DTLBWalkPct,
		WalkAfterPct:  e.DTLBWalkPct,
	}
}

func pct(after, before float64) float64 {
	if before == 0 {
		return 0
	}
	return (after - before) / before * 100
}

// AppMPKIBaselines gives per-application intrinsic LLC MPKI anchored to
// Table 1's "Before" column.
var AppMPKIBaselines = map[string]float64{
	"fleet":            2.52,
	"spanner":          3.80,
	"monarch":          2.64,
	"bigtable":         2.09,
	"f1-query":         2.28,
	"disk":             4.60,
	"redis":            1.10,
	"data-pipeline":    1.82,
	"image-processing": 0.81,
	"tensorflow":       1.88,
	"spec-cpu2006":     1.20,
}

// AppWalkBaselines gives per-application dTLB walk percentages anchored
// to Table 2's "Before" column; used to scale the coverage fit per app.
var AppWalkBaselines = map[string]float64{
	"fleet":            9.16,
	"spanner":          7.92,
	"monarch":          20.34,
	"bigtable":         17.25,
	"f1-query":         9.62,
	"disk":             8.42,
	"redis":            10.34,
	"data-pipeline":    5.36,
	"image-processing": 1.46,
	"tensorflow":       6.79,
	"spec-cpu2006":     2.10,
}

// InputsForApp builds Inputs with per-app baselines; missing apps fall
// back to the fleet anchors.
func InputsForApp(name string, p Params) Inputs {
	in := Inputs{BaseMPKI: AppMPKIBaselines["fleet"]}
	if v, ok := AppMPKIBaselines[name]; ok {
		in.BaseMPKI = v
	}
	return in
}

// WalkPctForApp evaluates the dTLB fit using an app-specific anchor: the
// app's Table 2 baseline is assumed measured at the reference coverage.
func WalkPctForApp(p Params, name string, coverage float64) float64 {
	ref := p.RefWalkPct
	if v, ok := AppWalkBaselines[name]; ok {
		ref = v
	}
	w := ref * math.Exp(-p.WalkSensitivity*(coverage-p.RefCoverage))
	if w > 60 {
		w = 60
	}
	return w
}

// WalkPctPair anchors the dTLB fit at the control run's coverage: the
// control side reports the app's Table 2 baseline, and the experiment
// side moves by the *measured coverage delta*. Simulated absolute
// coverage differs from the fleet's (no multi-year heap pressure), so
// only the delta is transferable.
func WalkPctPair(p Params, name string, covControl, covExperiment float64) (before, after float64) {
	before = p.RefWalkPct
	if v, ok := AppWalkBaselines[name]; ok {
		before = v
	}
	after = before * math.Exp(-p.WalkSensitivity*(covExperiment-covControl))
	if after > 60 {
		after = 60
	}
	return before, after
}
