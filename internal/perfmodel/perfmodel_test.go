package perfmodel

import (
	"math"
	"testing"
)

func baseInputs() Inputs {
	return Inputs{
		BaseMPKI:            2.52,
		InterDomainShare:    0.05,
		AllocatorCacheBytes: 64 << 20,
		HugepageCoverage:    0.544,
		MallocTimeShare:     0.043,
		Ops:                 1e6,
		DurationNs:          1e9,
	}
}

func TestWalkFitMatchesPaperAnchors(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	m := Evaluate(p, in)
	if math.Abs(m.DTLBWalkPct-9.16) > 0.01 {
		t.Fatalf("walk at ref coverage = %v, want 9.16", m.DTLBWalkPct)
	}
	in.HugepageCoverage = 0.562
	m = Evaluate(p, in)
	if math.Abs(m.DTLBWalkPct-6.22) > 0.15 {
		t.Fatalf("walk at 56.2%% coverage = %v, want ~6.22 (Table 2)", m.DTLBWalkPct)
	}
}

func TestHigherCoverageImprovesEverything(t *testing.T) {
	p := DefaultParams()
	lo := baseInputs()
	hi := baseInputs()
	hi.HugepageCoverage = 0.60
	mLo, mHi := Evaluate(p, lo), Evaluate(p, hi)
	if !(mHi.DTLBWalkPct < mLo.DTLBWalkPct && mHi.CPI < mLo.CPI &&
		mHi.ThroughputIndex > mLo.ThroughputIndex) {
		t.Fatalf("coverage improvement not monotone: %+v vs %+v", mLo, mHi)
	}
}

func TestInterDomainShareHurtsLLC(t *testing.T) {
	p := DefaultParams()
	local := baseInputs()
	local.InterDomainShare = 0
	remote := baseInputs()
	remote.InterDomainShare = 0.5
	mLocal, mRemote := Evaluate(p, local), Evaluate(p, remote)
	if mRemote.LLCLoadMPKI <= mLocal.LLCLoadMPKI {
		t.Fatal("inter-domain share must inflate MPKI")
	}
	if mRemote.ThroughputIndex >= mLocal.ThroughputIndex {
		t.Fatal("inter-domain share must reduce throughput")
	}
}

func TestCacheFootprintAddsPressure(t *testing.T) {
	p := DefaultParams()
	small := baseInputs()
	small.AllocatorCacheBytes = 1 << 20
	big := baseInputs()
	big.AllocatorCacheBytes = 512 << 20
	if Evaluate(p, big).LLCLoadMPKI <= Evaluate(p, small).LLCLoadMPKI {
		t.Fatal("footprint must add MPKI")
	}
}

func TestMallocShareTax(t *testing.T) {
	p := DefaultParams()
	lean := baseInputs()
	lean.MallocTimeShare = 0.01
	fat := baseInputs()
	fat.MallocTimeShare = 0.10
	if Evaluate(p, fat).ThroughputIndex >= Evaluate(p, lean).ThroughputIndex {
		t.Fatal("malloc share must tax throughput")
	}
}

func TestCompareDirection(t *testing.T) {
	p := DefaultParams()
	control := baseInputs()
	experiment := baseInputs()
	experiment.InterDomainShare = 0.01
	experiment.HugepageCoverage = 0.562
	d := Compare(p, control, experiment)
	if d.ThroughputPct <= 0 {
		t.Fatalf("throughput delta %v, want positive", d.ThroughputPct)
	}
	if d.CPIPct >= 0 {
		t.Fatalf("CPI delta %v, want negative", d.CPIPct)
	}
	if d.LLCAfter >= d.LLCBefore {
		t.Fatal("LLC must improve")
	}
	if d.WalkAfterPct >= d.WalkBeforePct {
		t.Fatal("walk must improve")
	}
}

func TestNUCAFleetMagnitude(t *testing.T) {
	// Table 1, fleet row: removing most cross-domain reuse should move
	// throughput by a fraction of a percent and LLC by a few percent —
	// small, like the paper's +0.32% / 2.52->2.41.
	p := DefaultParams()
	control := baseInputs()
	control.InterDomainShare = 0.176
	experiment := baseInputs()
	experiment.InterDomainShare = 0.0
	d := Compare(p, control, experiment)
	if d.ThroughputPct < 0.05 || d.ThroughputPct > 3 {
		t.Fatalf("fleet-scale NUCA throughput delta %v%% implausible", d.ThroughputPct)
	}
	llcDrop := (d.LLCBefore - d.LLCAfter) / d.LLCBefore * 100
	if llcDrop < 1 || llcDrop > 15 {
		t.Fatalf("LLC drop %v%% implausible vs paper's 4.37%%", llcDrop)
	}
}

func TestAppBaselinesComplete(t *testing.T) {
	apps := []string{"fleet", "spanner", "monarch", "bigtable", "f1-query", "disk",
		"redis", "data-pipeline", "image-processing", "tensorflow"}
	for _, app := range apps {
		if _, ok := AppMPKIBaselines[app]; !ok {
			t.Errorf("no MPKI baseline for %s", app)
		}
		if _, ok := AppWalkBaselines[app]; !ok {
			t.Errorf("no walk baseline for %s", app)
		}
	}
	in := InputsForApp("monarch", DefaultParams())
	if in.BaseMPKI != 2.64 {
		t.Fatalf("monarch MPKI = %v", in.BaseMPKI)
	}
	if in := InputsForApp("unknown-app", DefaultParams()); in.BaseMPKI != 2.52 {
		t.Fatalf("unknown app should fall back to fleet")
	}
}

func TestWalkPctForAppAnchors(t *testing.T) {
	p := DefaultParams()
	if got := WalkPctForApp(p, "monarch", p.RefCoverage); math.Abs(got-20.34) > 1e-9 {
		t.Fatalf("monarch anchor = %v", got)
	}
	if got := WalkPctForApp(p, "monarch", 0.60); got >= 20.34 {
		t.Fatal("higher coverage should cut monarch walks")
	}
	if got := WalkPctForApp(p, "never-heard-of-it", p.RefCoverage); math.Abs(got-9.16) > 1e-9 {
		t.Fatalf("fallback anchor = %v", got)
	}
}

func TestWalkClamped(t *testing.T) {
	p := DefaultParams()
	in := baseInputs()
	in.HugepageCoverage = 0
	if m := Evaluate(p, in); m.DTLBWalkPct > 60 {
		t.Fatalf("walk %v not clamped", m.DTLBWalkPct)
	}
}
