package workload

import (
	"testing"

	"wsmalloc/internal/core"
	"wsmalloc/internal/mem"
	"wsmalloc/internal/snapshot"
	"wsmalloc/internal/topology"
)

// machineState captures a whole simulated machine — allocator plus
// driver — the way fleet checkpoints do.
func encodeMachine(a *core.Allocator, d *Driver) []byte {
	var e snapshot.Encoder
	a.EncodeState(&e)
	d.EncodeState(&e)
	return e.Finish()
}

func decodeMachine(t *testing.T, blob []byte, a *core.Allocator, d *Driver) {
	t.Helper()
	dec, err := snapshot.NewDecoder(blob)
	if err != nil {
		t.Fatalf("decoder: %v", err)
	}
	if err := a.DecodeState(dec); err != nil {
		t.Fatalf("decode allocator: %v", err)
	}
	if err := d.DecodeState(dec); err != nil {
		t.Fatalf("decode driver: %v", err)
	}
}

// TestDriverKillAndResumeBitIdentical is the tentpole invariant at the
// machine level: halt a run at 50% virtual time (checkpointing at the
// halt), rebuild allocator and driver from the blob, finish the run,
// and require the Result — ops, frees, modeled nanoseconds, allocator
// stats — to equal an uninterrupted run byte for byte.
func TestDriverKillAndResumeBitIdentical(t *testing.T) {
	const seed = 21
	cfg := core.OptimizedConfig()
	prof := Monarch()

	base := DefaultOptions(seed)
	base.Duration = 20 * Millisecond

	uninterrupted := func() Result {
		a := core.New(cfg, topology.New(topology.Default()))
		return Run(prof, a, base)
	}
	want := uninterrupted()

	// Interrupted run: halt (and checkpoint) at 50% virtual time.
	a1 := core.New(cfg, topology.New(topology.Default()))
	var blob []byte
	opts := base
	opts.HaltAtNs = base.Duration / 2
	d1 := NewDriver(prof, a1, opts)
	var checkpointed *Driver
	opts.Checkpoint = func(now int64) { blob = encodeMachine(a1, checkpointed) }
	d1 = NewDriver(prof, a1, opts)
	checkpointed = d1
	d1.Run()
	if !d1.Halted() {
		t.Fatal("run did not halt")
	}
	if blob == nil {
		t.Fatal("no checkpoint taken at halt")
	}

	// Resume in a fresh process image: new allocator, new driver, state
	// overlaid from the blob, HaltAtNs cleared.
	a2 := core.New(cfg, topology.New(topology.Default()))
	d2 := NewDriver(prof, a2, base)
	decodeMachine(t, blob, a2, d2)
	got := d2.Run()

	if got.Ops != want.Ops || got.Frees != want.Frees ||
		got.MallocNs != want.MallocNs || got.AllocatedBytes != want.AllocatedBytes {
		t.Fatalf("resumed result diverges:\ngot  %+v\nwant %+v", got, want)
	}
	if got.Stats != want.Stats {
		t.Fatalf("resumed stats diverge:\ngot  %+v\nwant %+v", got.Stats, want.Stats)
	}
	if len(got.ThreadSeries) != len(want.ThreadSeries) {
		t.Fatalf("thread series length %d != %d", len(got.ThreadSeries), len(want.ThreadSeries))
	}
	for i := range got.ThreadSeries {
		if got.ThreadSeries[i] != want.ThreadSeries[i] {
			t.Fatalf("thread series diverges at %d", i)
		}
	}
}

// TestDriverCadenceCheckpointsResumable: every periodic checkpoint must
// be a valid resume point, not just the final one.
func TestDriverCadenceCheckpointsResumable(t *testing.T) {
	const seed = 33
	cfg := core.BaselineConfig()
	prof := Bigtable()
	base := DefaultOptions(seed)
	base.Duration = 12 * Millisecond

	want := func() Result {
		a := core.New(cfg, topology.New(topology.Default()))
		return Run(prof, a, base)
	}()

	a1 := core.New(cfg, topology.New(topology.Default()))
	var blobs [][]byte
	opts := base
	opts.CheckpointEveryNs = 3 * Millisecond
	var d1 *Driver
	opts.Checkpoint = func(now int64) { blobs = append(blobs, encodeMachine(a1, d1)) }
	d1 = NewDriver(prof, a1, opts)
	d1.Run()
	if len(blobs) < 3 {
		t.Fatalf("expected >=3 cadence checkpoints, got %d", len(blobs))
	}

	for i, blob := range blobs {
		a2 := core.New(cfg, topology.New(topology.Default()))
		d2 := NewDriver(prof, a2, base)
		decodeMachine(t, blob, a2, d2)
		got := d2.Run()
		if got.Ops != want.Ops || got.MallocNs != want.MallocNs || got.Stats != want.Stats {
			t.Fatalf("resume from checkpoint %d diverges", i)
		}
	}
}

// TestDriverOOMKillRestart: under a mapped-byte budget with
// HaltOnAllocFailure, the run halts at the first refused allocation;
// Restart against a fresh allocator keeps the workload position (clock,
// RNG, counters) while losing the heap, and the combined run is
// deterministic across repetitions.
func TestDriverOOMKillRestart(t *testing.T) {
	run := func() (Result, int64, int) {
		cfg := core.OptimizedConfig()
		// The fleet profile preloads a 1 GiB resident heap and maps
		// ~1.13 GiB over this window; the budget sits in between so the
		// run OOMs partway but a restarted (cold) process fits again.
		cfg.Faults = mem.FaultPlan{MappedBytesBudget: 1100 << 20}
		opts := DefaultOptions(5)
		opts.Duration = 30 * Millisecond
		opts.HaltOnAllocFailure = true

		a := core.New(cfg, topology.New(topology.Default()))
		d := NewDriver(Fleet(), a, opts)
		restarts := 0
		var firstKillAt int64
		res := d.Run()
		for d.Halted() {
			if restarts == 0 {
				firstKillAt = d.Now()
			}
			if restarts++; restarts > 50 {
				t.Fatal("restart loop not converging")
			}
			fresh := core.New(cfg, topology.New(topology.Default()))
			d.Restart(fresh)
			res = d.Run()
		}
		return res, firstKillAt, restarts
	}

	res1, killAt1, restarts1 := run()
	res2, killAt2, restarts2 := run()
	if restarts1 == 0 {
		t.Fatal("budget never triggered an OOM kill")
	}
	if killAt1 == 0 {
		t.Fatal("kill timestamp not recorded")
	}
	if restarts1 != restarts2 || killAt1 != killAt2 ||
		res1.Ops != res2.Ops || res1.Stats != res2.Stats {
		t.Fatalf("restart cycle not deterministic: %d/%d kills at %d/%d",
			restarts1, restarts2, killAt1, killAt2)
	}
	if res1.AllocFailures < int64(restarts1) {
		t.Fatalf("each kill should record a failure: %d < %d", res1.AllocFailures, restarts1)
	}
	// The workload kept its position: the completed run still spans the
	// full duration and performed work after the first kill.
	if res1.Duration != 30*Millisecond {
		t.Fatalf("duration %d", res1.Duration)
	}
	if res1.Ops == 0 || res1.Stats.LiveObjects < 0 {
		t.Fatalf("implausible result: %+v", res1)
	}
}
