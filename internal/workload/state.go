package workload

import (
	"sort"

	"wsmalloc/internal/check"
	"wsmalloc/internal/snapshot"
)

// EncodeState serializes the driver's run position: the workload RNG,
// virtual clock, thread count, death wheel (sorted by bucket, in-bucket
// order preserved — frees replay in the exact order the uninterrupted
// run issues them), preloaded resident heap, schedule cursors, and the
// accumulated Result counters. The profile and Options are not
// serialized: the resuming caller reconstructs the driver via NewDriver
// with the same arguments, then overlays this state.
func (d *Driver) EncodeState(e *snapshot.Encoder) {
	e.Section("workload.driver")
	d.r.EncodeState(e)
	e.I64(d.now)
	e.Int(d.threads)
	e.I64(d.curBucket)
	e.I64(d.liveCount)
	e.Bool(d.started)
	e.Bool(d.retuned)
	e.I64(d.nextThreadUpdate)
	e.I64(d.nextTick)
	e.I64(d.nextSnapshot)
	e.I64(d.nextAudit)
	e.I64(d.nextCheckpoint)

	// Emit one entry per populated bucket in ascending bucket order,
	// each bucket's objects in insertion order (far entries precede
	// ring entries — see the wheel fields) so the encoding is identical
	// to the old single-map wheel's.
	ringBuckets := make(map[int64]int, wheelRingSize)
	buckets := make([]int64, 0, len(d.wheelFar)+wheelRingSize)
	for slot, objs := range d.wheelRing {
		if len(objs) == 0 {
			continue
		}
		b := d.ringBucketOf(int64(slot))
		ringBuckets[b] = slot
		buckets = append(buckets, b)
	}
	for b := range d.wheelFar {
		if _, dup := ringBuckets[b]; !dup {
			buckets = append(buckets, b)
		}
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	e.Len(len(buckets))
	for _, b := range buckets {
		objs := d.wheelFar[b]
		if slot, ok := ringBuckets[b]; ok {
			objs = append(objs[:len(objs):len(objs)], d.wheelRing[slot]...)
		}
		e.I64(b)
		e.Len(len(objs))
		for _, o := range objs {
			e.U64(o.addr)
			e.Int(o.size)
		}
	}

	e.Len(len(d.preloaded))
	for _, o := range d.preloaded {
		e.U64(o.addr)
		e.Int(o.size)
	}

	e.Section("workload.result")
	e.I64(d.res.Ops)
	e.I64(d.res.Frees)
	e.F64(d.res.MallocNs)
	e.I64(d.res.AllocatedBytes)
	e.I64(d.res.AllocFailures)
	e.I64(d.res.Audits)
	e.Len(len(d.res.ThreadSeries))
	for _, n := range d.res.ThreadSeries {
		e.Int(n)
	}
	e.Len(len(d.res.Violations))
	for _, v := range d.res.Violations {
		e.String(v.Tier)
		e.String(string(v.Kind))
		e.String(v.Detail)
	}
}

// DecodeState restores driver state saved by EncodeState into a driver
// freshly built by NewDriver with the same profile, options, and a
// restored (or fresh) allocator.
func (d *Driver) DecodeState(dec *snapshot.Decoder) error {
	dec.Section("workload.driver")
	d.r.DecodeState(dec)
	d.now = dec.I64()
	d.setThreads(dec.Int())
	d.curBucket = dec.I64()
	d.liveCount = dec.I64()
	d.started = dec.Bool()
	d.retuned = dec.Bool()
	d.nextThreadUpdate = dec.I64()
	d.nextTick = dec.I64()
	d.nextSnapshot = dec.I64()
	d.nextAudit = dec.I64()
	d.nextCheckpoint = dec.I64()
	if dec.Err() == nil && d.threads < 1 {
		dec.Fail("workload: restored thread count %d", d.threads)
	}

	nb := dec.Len(8 + 4)
	d.wheelRing = make([][]object, wheelRingSize)
	d.wheelFar = make(map[int64][]object, nb)
	var wheelObjs int64
	for i := 0; i < nb && dec.Err() == nil; i++ {
		b := dec.I64()
		no := dec.Len(8 + 4)
		objs := make([]object, 0, no)
		for j := 0; j < no; j++ {
			objs = append(objs, object{addr: dec.U64(), size: dec.Int()})
		}
		if dec.Err() != nil {
			break
		}
		// Route each restored bucket the same way the insert path
		// would: in-window buckets to the ring, the rest to the far
		// map. A merged far+ring bucket collapses into one ring slice;
		// its replay order is unchanged.
		if b >= d.curBucket && b-d.curBucket < wheelRingSize {
			slot := b & wheelMask
			if len(d.wheelRing[slot]) > 0 {
				dec.Fail("workload: duplicate death bucket %d", b)
				break
			}
			d.wheelRing[slot] = objs
		} else {
			if _, dup := d.wheelFar[b]; dup {
				dec.Fail("workload: duplicate death bucket %d", b)
				break
			}
			d.wheelFar[b] = objs
		}
		wheelObjs += int64(no)
	}
	if dec.Err() == nil && wheelObjs != d.liveCount {
		dec.Fail("workload: wheel holds %d objects, liveCount says %d", wheelObjs, d.liveCount)
	}

	np := dec.Len(8 + 4)
	d.preloaded = make([]object, 0, np)
	for i := 0; i < np && dec.Err() == nil; i++ {
		d.preloaded = append(d.preloaded, object{addr: dec.U64(), size: dec.Int()})
	}

	dec.Section("workload.result")
	d.res.Ops = dec.I64()
	d.res.Frees = dec.I64()
	d.res.MallocNs = dec.F64()
	d.res.AllocatedBytes = dec.I64()
	d.res.AllocFailures = dec.I64()
	d.res.Audits = dec.I64()
	ns := dec.Len(4)
	d.res.ThreadSeries = make([]int, 0, ns)
	for i := 0; i < ns && dec.Err() == nil; i++ {
		d.res.ThreadSeries = append(d.res.ThreadSeries, dec.Int())
	}
	nv := dec.Len(4 * 3)
	d.res.Violations = nil
	for i := 0; i < nv && dec.Err() == nil; i++ {
		d.res.Violations = append(d.res.Violations, check.Violation{
			Tier:   dec.String(),
			Kind:   check.Kind(dec.String()),
			Detail: dec.String(),
		})
	}
	return dec.Err()
}
