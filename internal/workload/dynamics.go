package workload

import (
	"math"

	"wsmalloc/internal/rng"
)

// ThreadDynamics models the worker-thread count of a WSC application over
// time: a diurnal sine around a base level, multiplicative jitter, and
// occasional load spikes — the constantly-fluctuating shape of Fig. 9a
// that motivates heterogeneous per-CPU caches.
type ThreadDynamics struct {
	// Base is the steady-state thread count.
	Base int
	// Amplitude is the diurnal swing (threads).
	Amplitude float64
	// PeriodNs is the diurnal period.
	PeriodNs int64
	// Jitter is the multiplicative noise std-dev (0.15 = ±15%).
	Jitter float64
	// SpikeProb is the per-evaluation probability of a load spike.
	SpikeProb float64
	// SpikeBoost is the extra threads a spike adds.
	SpikeBoost int
}

// Count returns the active thread count at virtual time t. It always
// returns at least 1.
func (d ThreadDynamics) Count(r *rng.RNG, t int64) int {
	n := float64(d.Base)
	if d.Amplitude > 0 && d.PeriodNs > 0 {
		phase := 2 * math.Pi * float64(t%d.PeriodNs) / float64(d.PeriodNs)
		n += d.Amplitude * math.Sin(phase)
	}
	if d.Jitter > 0 {
		n *= 1 + d.Jitter*r.NormFloat64()
	}
	if d.SpikeProb > 0 && r.Bool(d.SpikeProb) {
		n += float64(d.SpikeBoost)
	}
	if n < 1 {
		return 1
	}
	return int(n)
}

// Series evaluates the thread count at fixed intervals over a duration —
// the data series behind Fig. 9a.
func (d ThreadDynamics) Series(r *rng.RNG, duration, step int64) []int {
	var out []int
	for t := int64(0); t < duration; t += step {
		out = append(out, d.Count(r, t))
	}
	return out
}
