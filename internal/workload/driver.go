package workload

import (
	"fmt"
	"math"

	"wsmalloc/internal/check"
	"wsmalloc/internal/core"
	"wsmalloc/internal/rng"
)

// Options control a workload run.
type Options struct {
	// Duration is the virtual run length in ns.
	Duration int64
	// Seed makes the run reproducible.
	Seed uint64
	// TimeWarpCutoffNs and TimeWarpGamma compress long lifetimes so that
	// hour/day-scale behaviour folds into a sub-second virtual run while
	// preserving the short-lifetime structure: lifetimes below the
	// cutoff are kept, longer ones become cutoff*(life/cutoff)^gamma.
	TimeWarpCutoffNs int64
	TimeWarpGamma    float64
	// DynamicsPeriodNs overrides the profile's diurnal period so thread
	// fluctuation happens within the run (default Duration/4).
	DynamicsPeriodNs int64
	// TickEveryNs is the allocator background-work cadence.
	TickEveryNs int64
	// ThreadUpdateEveryNs is how often the thread count is re-evaluated.
	ThreadUpdateEveryNs int64
	// Snapshot, when non-nil, is called every SnapshotEveryNs.
	Snapshot        func(now int64)
	SnapshotEveryNs int64
	// AuditEveryNs, when positive, runs the allocator's full invariant
	// auditor (core.CheckInvariants) every AuditEveryNs of virtual time
	// and once more at the end of the run. Violations land in
	// Result.Violations.
	AuditEveryNs int64
	// Checkpoint, when non-nil, is called every CheckpointEveryNs of
	// virtual time, and once more at HaltAtNs if a halt is requested. It
	// fires at the top of the event loop — before the next arrival is
	// drawn — so a driver serialized inside the callback resumes
	// bit-identically to a run that was never interrupted. The callback
	// must not touch the driver's RNG or allocator.
	Checkpoint        func(now int64)
	CheckpointEveryNs int64
	// HaltAtNs, when positive, stops Run at the first loop iteration at
	// or past this virtual time (a simulated kill). A final Checkpoint
	// fires first, so the run can be resumed from exactly the halt
	// point. Resuming callers must clear HaltAtNs (or move it later) in
	// the resumed options, or the run halts again immediately.
	HaltAtNs int64
	// HaltOnAllocFailure stops Run at the first allocation the
	// allocator refuses, instead of dropping the op — the OOM-kill
	// trigger for machine-lifecycle runs. No checkpoint fires: an
	// OOM-killed process loses its heap and is restarted cold (see
	// Driver.Restart).
	HaltOnAllocFailure bool
	// RetuneAtNs and RetuneDesign schedule a live design-point swap: at
	// the first loop iteration at or past RetuneAtNs the allocator is
	// retuned to RetuneDesign via core.ApplyDesign, exactly once per
	// run. The swap fires at the loop top, before the checkpoint and
	// halt checks, so a checkpoint taken at the same virtual tick
	// already contains the swapped state and a kill/resume at the swap
	// point is bit-identical to an uninterrupted swapped run. Zero
	// RetuneAtNs or empty RetuneDesign disables.
	RetuneAtNs   int64
	RetuneDesign string
}

// DefaultOptions returns options suitable for experiment runs.
func DefaultOptions(seed uint64) Options {
	return Options{
		Duration:            200 * Millisecond,
		Seed:                seed,
		TimeWarpCutoffNs:    20 * Millisecond,
		TimeWarpGamma:       0.22,
		TickEveryNs:         Millisecond,
		ThreadUpdateEveryNs: 2 * Millisecond,
	}
}

// Result summarizes a run.
type Result struct {
	// Ops is the number of allocations performed (frees are equal for
	// objects that died in-run).
	Ops int64
	// Frees is the number of frees performed.
	Frees int64
	// MallocNs is the total modeled allocator time.
	MallocNs float64
	// TotalCPUNs is the implied application CPU time, derived from the
	// profile's malloc fraction: malloc cycles are MallocFraction of all
	// cycles (Fig. 5a).
	TotalCPUNs float64
	// AllocatedBytes accumulates requested bytes.
	AllocatedBytes int64
	// Duration is the virtual run length.
	Duration int64
	// ThreadSeries samples the active thread count every
	// ThreadUpdateEveryNs (Fig. 9a).
	ThreadSeries []int
	// Stats is the allocator snapshot at the end of the run (before any
	// teardown).
	Stats core.Stats
	// AllocFailures counts allocations the allocator refused (OOM under
	// fault injection even after its drain-and-retry paths). Failed
	// allocations are dropped: the workload carries on without the
	// object, which is the graceful-degradation behaviour chaos runs
	// assert.
	AllocFailures int64
	// Audits is the number of invariant audits performed (see
	// Options.AuditEveryNs).
	Audits int64
	// Violations holds the outcome of the most recent audit. Structural
	// violations are recomputed per audit; shadow-heap violations
	// accumulate over the run, so the final audit subsumes earlier ones.
	Violations []check.Violation
}

// OpsPerSecond is the workload-visible operation rate.
func (r Result) OpsPerSecond() float64 {
	if r.Duration == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.Duration) / 1e9)
}

// object tracks one live allocation.
type object struct {
	addr uint64
	size int
}

// deathBucketNs is the granularity of the death wheel.
const deathBucketNs = 100 * Microsecond

// wheelRingSize is the number of near-future death buckets kept in a
// flat ring — ~410 ms of virtual time, past the warped lifetime of
// almost every object, so the per-op schedule/drain path is two slice
// ops instead of map traffic (the map was a top entry in fleet CPU
// profiles). Deaths beyond the window overflow into wheelFar. Power of
// two so the slot index is a mask.
const (
	wheelRingSize = 4096
	wheelMask     = wheelRingSize - 1
)

// Driver runs a profile against an allocator. All run-position state
// lives in fields (not Run locals) so a driver can be serialized at a
// checkpoint and resumed, or rebound to a fresh allocator after a
// simulated OOM kill, without losing its place in the workload.
type Driver struct {
	profile Profile
	alloc   *core.Allocator
	opts    Options
	r       *rng.RNG
	dyn     ThreadDynamics

	now     int64
	threads int
	// Hot-loop caches, derived (never serialized): gapNs is
	// MeanAllocGapNs/threads, refreshed by setThreads; cpuSet is the
	// clamped CPU-set width, refreshed when the allocator binds.
	gapNs  float64
	cpuSet int
	// The death wheel: slot b&wheelMask of wheelRing holds bucket b's
	// objects while b is inside [curBucket, curBucket+wheelRingSize);
	// later buckets live in wheelFar until the window reaches them.
	// In-bucket insertion order — which free replay depends on — is
	// far entries first, then ring entries: every far insert for a
	// bucket happens strictly before the window (which only moves
	// forward) admits that bucket's ring inserts.
	wheelRing [][]object
	wheelFar  map[int64][]object
	curBucket int64
	liveCount int64
	preloaded []object

	// bucketPool stashes the storage of consumed far-wheel buckets for
	// reuse (ring slots keep their storage in place). Purely an
	// allocation cache: it never holds live objects and is not part of
	// the serialized driver state.
	bucketPool [][]object

	started    bool
	halted     bool
	haltReason HaltReason
	// retuned records that the scheduled design swap fired; serialized,
	// so a resumed run neither re-fires nor misses it.
	retuned bool

	nextThreadUpdate int64
	nextTick         int64
	nextSnapshot     int64
	nextAudit        int64
	nextCheckpoint   int64

	res Result
}

// NewDriver prepares a run.
func NewDriver(p Profile, a *core.Allocator, opts Options) *Driver {
	if opts.Duration <= 0 {
		panic("workload: non-positive duration")
	}
	if opts.DynamicsPeriodNs == 0 {
		opts.DynamicsPeriodNs = opts.Duration / 4
	}
	if opts.TimeWarpCutoffNs == 0 {
		opts.TimeWarpCutoffNs = 20 * Millisecond
	}
	if opts.TimeWarpGamma == 0 {
		opts.TimeWarpGamma = 0.22
	}
	if opts.TickEveryNs == 0 {
		opts.TickEveryNs = Millisecond
	}
	if opts.ThreadUpdateEveryNs == 0 {
		opts.ThreadUpdateEveryNs = 2 * Millisecond
	}
	// Heap-profile samples are attributed to synthetic call-sites keyed
	// by the workload name; the driver owns the allocator for the run.
	if hp := a.HeapProfiler(); hp != nil {
		hp.SetWorkload(p.Name)
	}
	dyn := p.Threads
	dyn.PeriodNs = opts.DynamicsPeriodNs
	d := &Driver{
		profile:   p,
		alloc:     a,
		opts:      opts,
		r:         rng.New(opts.Seed),
		dyn:       dyn,
		wheelRing: make([][]object, wheelRingSize),
		wheelFar:  make(map[int64][]object),
	}
	d.refreshCPUSet()
	return d
}

// setThreads updates the active thread count and the derived per-thread
// arrival gap (the same division the event loop used to repeat per op).
func (d *Driver) setThreads(n int) {
	d.threads = n
	d.gapNs = d.profile.MeanAllocGapNs / float64(n)
}

// refreshCPUSet recomputes the clamped CPU-set width; call whenever the
// allocator binding changes (construction, Restart).
func (d *Driver) refreshCPUSet() {
	set := d.profile.CPUSet
	if max := d.alloc.Topology().NumCPUs(); set > max {
		set = max
	}
	if set < 1 {
		set = 1
	}
	d.cpuSet = set
}

// warp compresses a lifetime per the options.
func (d *Driver) warp(life int64) int64 {
	if life <= d.opts.TimeWarpCutoffNs {
		if life < 1 {
			return 1
		}
		return life
	}
	c := float64(d.opts.TimeWarpCutoffNs)
	return int64(c * math.Pow(float64(life)/c, d.opts.TimeWarpGamma))
}

// pickThread selects the worker issuing the next operation. Thread pools
// hand work to recently-idle workers first (LIFO), so low-index threads
// carry more traffic — the source of the per-vCPU usage bias in Fig. 9b.
func (d *Driver) pickThread() int {
	u := d.r.Float64()
	return int(u * u * float64(d.threads))
}

// cpuForThread maps a worker thread to a physical CPU within the
// application's CPU set (cached by refreshCPUSet; the modulo is skipped
// when the thread index already fits).
func (d *Driver) cpuForThread(thread int) int {
	if thread < d.cpuSet {
		return thread
	}
	return thread % d.cpuSet
}

// preload builds the profile's resident heap before the measured window.
func (d *Driver) preload() {
	dist := d.profile.PreloadDist
	if dist == nil {
		dist = DefaultPreloadDist()
	}
	var total int64
	consecutiveFailures := 0
	for total < d.profile.PreloadBytes {
		size := int(dist.Sample(d.r))
		if size < 1 {
			size = 1
		}
		cpu := d.cpuForThread(d.r.Intn(d.threads))
		addr, _, err := d.alloc.TryMalloc(size, cpu)
		if err != nil {
			// Under an injected mapped-byte budget the resident heap may
			// simply not fit; preloading retries past transient mmap
			// failures but gives up once the allocator is firmly out of
			// memory (nothing is freed during preload).
			d.res.AllocFailures++
			if consecutiveFailures++; consecutiveFailures >= 8 {
				return
			}
			continue
		}
		consecutiveFailures = 0
		d.preloaded = append(d.preloaded, object{addr, size})
		total += int64(size)
	}
}

// Run executes the workload and returns the result. A driver restored
// from a checkpoint (or one that halted) continues from where it left
// off: initialization runs only on the first call.
func (d *Driver) Run() Result {
	p := d.profile
	if !d.started {
		d.setThreads(d.dyn.Count(d.r, 0))
		d.res.ThreadSeries = append(d.res.ThreadSeries, d.threads)
		d.preload()

		d.nextThreadUpdate = d.opts.ThreadUpdateEveryNs
		d.nextTick = d.opts.TickEveryNs
		d.nextSnapshot = math.MaxInt64
		if d.opts.Snapshot != nil && d.opts.SnapshotEveryNs > 0 {
			d.nextSnapshot = d.opts.SnapshotEveryNs
		}
		d.nextAudit = math.MaxInt64
		if d.opts.AuditEveryNs > 0 {
			d.nextAudit = d.opts.AuditEveryNs
		}
		d.nextCheckpoint = math.MaxInt64
		if d.opts.Checkpoint != nil && d.opts.CheckpointEveryNs > 0 {
			d.nextCheckpoint = d.opts.CheckpointEveryNs
		}
		d.started = true
	}
	d.halted = false
	d.haltReason = HaltNone
	// A resumed run may enable checkpointing that the original run did
	// not have (or drop it — the gate below checks the live options).
	if d.opts.Checkpoint != nil && d.opts.CheckpointEveryNs > 0 &&
		d.nextCheckpoint == math.MaxInt64 {
		d.nextCheckpoint = d.now + d.opts.CheckpointEveryNs
	}

	for d.now < d.opts.Duration {
		// A scheduled design swap fires first: the checkpoint (and the
		// halt checkpoint) taken at this same iteration must capture the
		// swapped allocator, so resume lands after the swap.
		if !d.retuned && d.opts.RetuneDesign != "" && d.opts.RetuneAtNs > 0 &&
			d.now >= d.opts.RetuneAtNs {
			d.retuned = true
			if err := d.alloc.ApplyDesign(d.opts.RetuneDesign); err != nil {
				panic(fmt.Sprintf("workload: retune to %q: %v", d.opts.RetuneDesign, err))
			}
		}
		// The loop top is the resume point: no event is in flight, so a
		// checkpoint taken here captures the run completely. The cursor
		// advances before the callback so the serialized driver does not
		// re-fire this checkpoint on resume.
		if d.opts.Checkpoint != nil && d.opts.CheckpointEveryNs > 0 &&
			d.now >= d.nextCheckpoint {
			d.nextCheckpoint += d.opts.CheckpointEveryNs
			d.opts.Checkpoint(d.now)
		}
		if d.opts.HaltAtNs > 0 && d.now >= d.opts.HaltAtNs {
			if d.opts.Checkpoint != nil {
				d.opts.Checkpoint(d.now)
			}
			d.halted = true
			d.haltReason = HaltTimer
			return d.res
		}

		// Next allocation arrival: exponential with rate threads/gap.
		dt := int64(d.gapNs * d.r.ExpFloat64())
		if dt < 1 {
			dt = 1
		}
		d.now += dt

		d.processDeaths(d.now)

		if d.now >= d.nextTick {
			d.alloc.Tick(d.now)
			d.nextTick += d.opts.TickEveryNs
		}
		if d.now >= d.nextThreadUpdate {
			d.setThreads(d.dyn.Count(d.r, d.now))
			d.res.ThreadSeries = append(d.res.ThreadSeries, d.threads)
			d.nextThreadUpdate += d.opts.ThreadUpdateEveryNs
		}
		if d.now >= d.nextSnapshot {
			d.opts.Snapshot(d.now)
			d.nextSnapshot += d.opts.SnapshotEveryNs
		}
		if d.now >= d.nextAudit {
			d.audit()
			d.nextAudit += d.opts.AuditEveryNs
		}
		if d.now >= d.opts.Duration {
			break
		}

		size := int(p.SizeDist.Sample(d.r))
		if size < 1 {
			size = 1
		}
		cpu := d.cpuForThread(d.pickThread())
		addr, cost, err := d.alloc.TryMalloc(size, cpu)
		d.res.MallocNs += cost
		if err != nil {
			d.res.AllocFailures++
			if d.opts.HaltOnAllocFailure {
				// The process is OOM-killed mid-allocation; the caller
				// restarts it against a fresh allocator (Restart).
				d.halted = true
				d.haltReason = HaltAllocFailure
				return d.res
			}
			// Degrade gracefully: the op is dropped and the workload
			// proceeds. Frees keep running, so memory pressure can clear.
			continue
		}
		d.res.Ops++
		d.res.AllocatedBytes += int64(size)
		d.liveCount++

		life := d.warp(p.Lifetime.Sample(d.r, size))
		die := d.now + life
		bucket := die / deathBucketNs
		if bucket-d.curBucket < wheelRingSize {
			slot := bucket & wheelMask
			d.wheelRing[slot] = append(d.wheelRing[slot], object{addr, size})
		} else {
			d.scheduleFar(bucket, object{addr, size})
		}
	}

	if d.opts.AuditEveryNs > 0 {
		d.audit()
	}
	d.res.Duration = d.opts.Duration
	d.res.Stats = d.alloc.Stats()
	if p.MallocFraction > 0 {
		d.res.TotalCPUNs = d.res.MallocNs / p.MallocFraction
	}
	return d.res
}

// HaltReason says why the last Run call stopped early.
type HaltReason uint8

const (
	// HaltNone: the run completed (or has not halted yet).
	HaltNone HaltReason = iota
	// HaltTimer: the run reached Options.HaltAtNs (a scheduled kill).
	HaltTimer
	// HaltAllocFailure: the allocator refused an allocation with
	// Options.HaltOnAllocFailure set (a simulated OOM kill).
	HaltAllocFailure
)

// Halted reports whether the last Run call stopped early — at HaltAtNs
// or on a refused allocation — rather than completing the workload.
func (d *Driver) Halted() bool { return d.halted }

// HaltReason distinguishes a scheduled kill from an OOM kill.
func (d *Driver) HaltReason() HaltReason { return d.haltReason }

// SetHaltAt reschedules (or, with 0, cancels) the run's halt time —
// how a lifecycle caller clears a churn kill after restarting the
// machine, so the resumed Run doesn't halt again immediately.
func (d *Driver) SetHaltAt(ns int64) { d.opts.HaltAtNs = ns }

// Now returns the driver's virtual-time position.
func (d *Driver) Now() int64 { return d.now }

// Restart rebinds a halted driver to a freshly constructed allocator,
// modeling an OOM-kill/re-exec cycle: every live object and every
// cached span died with the old process, but the workload keeps its
// position — RNG cursor, virtual clock, thread count, result counters
// and schedule cursors all survive. Like a real restarted process, it
// rebuilds its resident heap before serving traffic again; the death
// wheel is cleared because the objects it tracked no longer exist.
func (d *Driver) Restart(a *core.Allocator) {
	d.alloc = a
	d.refreshCPUSet()
	if hp := a.HeapProfiler(); hp != nil {
		hp.SetWorkload(d.profile.Name)
	}
	for i := range d.wheelRing {
		if d.wheelRing[i] != nil {
			d.wheelRing[i] = d.wheelRing[i][:0]
		}
	}
	d.wheelFar = make(map[int64][]object)
	d.liveCount = 0
	d.preloaded = nil
	d.halted = false
	d.haltReason = HaltNone
	if d.retuned && d.opts.RetuneDesign != "" {
		// The design swap already happened fleet-side; a restarted
		// process comes back up under the design in force, not the
		// construction-time one.
		if err := a.ApplyDesign(d.opts.RetuneDesign); err != nil {
			panic(fmt.Sprintf("workload: retune to %q on restart: %v", d.opts.RetuneDesign, err))
		}
	}
	a.Tick(d.now)
	if d.started {
		d.preload()
	}
}

// audit runs the allocator-wide invariant check and records the outcome.
// Each audit replaces Result.Violations: structural checks are recomputed
// from scratch, and shadow-heap violations accumulate inside the
// allocator, so the latest audit is always the most complete.
func (d *Driver) audit() {
	d.res.Audits++
	d.res.Violations = d.alloc.CheckInvariants()
}

// processDeaths frees every object whose death bucket has passed. The
// freeing CPU is a random currently-active thread's CPU, so objects
// regularly die on a different CPU (and LLC domain) than they were
// allocated on — the cross-CPU flow the transfer cache exists for.
func (d *Driver) processDeaths(now int64) {
	nowBucket := now / deathBucketNs
	for b := d.curBucket; b <= nowBucket; b++ {
		// Far entries precede ring entries in insertion order (see the
		// wheel fields) — free them first so replay order matches the
		// single-map wheel bit for bit.
		if len(d.wheelFar) > 0 {
			if objs, ok := d.wheelFar[b]; ok {
				delete(d.wheelFar, b)
				d.freeBucket(objs)
				if len(d.bucketPool) < 64 {
					d.bucketPool = append(d.bucketPool, objs[:0])
				}
			}
		}
		slot := b & wheelMask
		if objs := d.wheelRing[slot]; len(objs) > 0 {
			d.freeBucket(objs)
			// Ring slots keep their storage in place for bucket b+ring.
			d.wheelRing[slot] = objs[:0]
		}
		d.curBucket = b
	}
}

// freeBucket frees one death bucket's objects on randomly chosen
// currently-active threads (one RNG draw per object — draw order is
// part of the determinism contract).
func (d *Driver) freeBucket(objs []object) {
	for _, o := range objs {
		cpu := d.cpuForThread(d.pickThread())
		cost := d.alloc.Free(o.addr, o.size, cpu)
		d.res.Frees++
		d.res.MallocNs += cost
		d.liveCount--
	}
}

// ringBucketOf recovers the bucket number a populated ring slot holds:
// the unique b ≡ slot (mod wheelRingSize) inside the current window
// [curBucket, curBucket+wheelRingSize).
func (d *Driver) ringBucketOf(slot int64) int64 {
	off := (slot - (d.curBucket & wheelMask) + wheelRingSize) & wheelMask
	return d.curBucket + off
}

// scheduleFar parks an object whose death bucket is beyond the ring
// window, recycling consumed far-bucket storage when available.
func (d *Driver) scheduleFar(bucket int64, o object) {
	objs, ok := d.wheelFar[bucket]
	if !ok {
		if n := len(d.bucketPool); n > 0 {
			objs = d.bucketPool[n-1]
			d.bucketPool[n-1] = nil
			d.bucketPool = d.bucketPool[:n-1]
		} else {
			objs = make([]object, 0, 32)
		}
	}
	d.wheelFar[bucket] = append(objs, o)
}

// DrainRemaining frees every object still scheduled in the wheel plus
// the preloaded resident heap (used for teardown accounting in tests).
func (d *Driver) DrainRemaining() {
	for i, objs := range d.wheelRing {
		for _, o := range objs {
			d.alloc.Free(o.addr, o.size, 0)
			d.liveCount--
		}
		if objs != nil {
			d.wheelRing[i] = objs[:0]
		}
	}
	for b, objs := range d.wheelFar {
		for _, o := range objs {
			d.alloc.Free(o.addr, o.size, 0)
			d.liveCount--
		}
		delete(d.wheelFar, b)
	}
	for _, o := range d.preloaded {
		d.alloc.Free(o.addr, o.size, 0)
	}
	d.preloaded = nil
	if d.liveCount != 0 {
		panic("workload: live-object accounting mismatch")
	}
}

// LiveObjects returns the number of objects the driver still holds.
func (d *Driver) LiveObjects() int64 { return d.liveCount }

// Run is a convenience wrapper: build a driver and run it.
func Run(p Profile, a *core.Allocator, opts Options) Result {
	return NewDriver(p, a, opts).Run()
}
