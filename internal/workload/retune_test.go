package workload

import (
	"testing"

	"wsmalloc/internal/core"
	"wsmalloc/internal/policy"
	"wsmalloc/internal/topology"
)

// retuneOptions schedules a mid-run live swap at 10ms of a 20ms run:
// the machine starts under the baseline design and retunes to the
// optimized design point at virtual-time 10ms.
func retuneOptions(seed uint64) Options {
	opts := DefaultOptions(seed)
	opts.Duration = 20 * Millisecond
	opts.RetuneAtNs = 10 * Millisecond
	opts.RetuneDesign = policy.Optimized().String()
	return opts
}

// TestDriverRetuneChangesOutcome: the swap must actually retune — a run
// with the mid-run swap differs from a run that stays on baseline, and
// from one constructed optimized (the swapped half ran baseline first).
func TestDriverRetuneChangesOutcome(t *testing.T) {
	cfg := core.BaselineConfig()
	prof := Monarch()
	run := func(opts Options) Result {
		a := core.New(cfg, topology.New(topology.Default()))
		return Run(prof, a, opts)
	}
	plain := DefaultOptions(3)
	plain.Duration = 20 * Millisecond
	base := run(plain)
	swapped := run(retuneOptions(3))
	if base.Stats == swapped.Stats {
		t.Fatal("mid-run retune left the run identical to baseline")
	}
	if base.Ops != swapped.Ops {
		t.Fatalf("retune changed the workload itself: %d vs %d ops", base.Ops, swapped.Ops)
	}
}

// TestDriverRetuneKillResumeBitIdentical pins the tentpole determinism
// contract at the machine level: halting (and checkpointing) before the
// swap, exactly at the swap tick, and after the swap must each resume
// into a run bit-identical to the uninterrupted swapped run. The
// at-the-tick case is the sharp edge: the swap fires before the
// checkpoint, so the blob carries post-swap state and the resumed run
// must not re-fire it.
func TestDriverRetuneKillResumeBitIdentical(t *testing.T) {
	const seed = 27
	cfg := core.BaselineConfig()
	prof := Monarch()
	base := retuneOptions(seed)

	want := func() Result {
		a := core.New(cfg, topology.New(topology.Default()))
		return Run(prof, a, base)
	}()

	for _, haltAt := range []int64{5 * Millisecond, 10 * Millisecond, 15 * Millisecond} {
		a1 := core.New(cfg, topology.New(topology.Default()))
		var blob []byte
		opts := base
		opts.HaltAtNs = haltAt
		var d1 *Driver
		opts.Checkpoint = func(now int64) { blob = encodeMachine(a1, d1) }
		d1 = NewDriver(prof, a1, opts)
		d1.Run()
		if !d1.Halted() {
			t.Fatalf("halt at %d: run did not halt", haltAt)
		}
		if blob == nil {
			t.Fatalf("halt at %d: no checkpoint taken", haltAt)
		}
		if wantDesign := haltAt >= base.RetuneAtNs; wantDesign != (a1.Design() == base.RetuneDesign) {
			t.Fatalf("halt at %d: design %q, swap fired=%v", haltAt, a1.Design(), wantDesign)
		}

		// Resume into a fresh process image: allocator built with the
		// PRE-swap config — the snapshot replays the swap if it happened.
		a2 := core.New(cfg, topology.New(topology.Default()))
		d2 := NewDriver(prof, a2, base)
		decodeMachine(t, blob, a2, d2)
		got := d2.Run()

		if got.Ops != want.Ops || got.Frees != want.Frees ||
			got.MallocNs != want.MallocNs || got.AllocatedBytes != want.AllocatedBytes {
			t.Fatalf("halt at %d: resumed result diverges:\ngot  %+v\nwant %+v", haltAt, got, want)
		}
		if got.Stats != want.Stats {
			t.Fatalf("halt at %d: resumed stats diverge:\ngot  %+v\nwant %+v", haltAt, got.Stats, want.Stats)
		}
		if a2.Design() != base.RetuneDesign {
			t.Fatalf("halt at %d: finished run under %q, want %q", haltAt, a2.Design(), base.RetuneDesign)
		}
	}
}

// TestDriverRetuneRestartReapplies: a machine cold-restarted after the
// swap tick must come back up under the design in force, not the
// construction design — Restart replays the retune onto the fresh
// allocator.
func TestDriverRetuneRestartReapplies(t *testing.T) {
	cfg := core.BaselineConfig()
	opts := retuneOptions(9)
	opts.HaltAtNs = 15 * Millisecond // "kill" the machine after the swap

	a := core.New(cfg, topology.New(topology.Default()))
	d := NewDriver(Monarch(), a, opts)
	d.Run()
	if !d.Halted() || d.HaltReason() != HaltTimer {
		t.Fatalf("halt=%v reason=%v", d.Halted(), d.HaltReason())
	}

	fresh := core.New(cfg, topology.New(topology.Default()))
	d.Restart(fresh)
	if got := fresh.Design(); got != opts.RetuneDesign {
		t.Fatalf("restarted allocator under %q, want %q", got, opts.RetuneDesign)
	}
	d.SetHaltAt(0)
	res := d.Run()
	if d.Halted() {
		t.Fatal("run did not finish after restart")
	}
	if res.Duration != opts.Duration {
		t.Fatalf("duration %d, want %d", res.Duration, opts.Duration)
	}

	// A restart BEFORE the swap tick must not pre-apply the design.
	early := retuneOptions(9)
	early.HaltAtNs = 5 * Millisecond
	a = core.New(cfg, topology.New(topology.Default()))
	d = NewDriver(Monarch(), a, early)
	d.Run()
	fresh = core.New(cfg, topology.New(topology.Default()))
	d.Restart(fresh)
	if got := fresh.Design(); got == early.RetuneDesign {
		t.Fatalf("restart before the swap tick pre-applied the design %q", got)
	}
}
