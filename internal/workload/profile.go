// Package workload synthesizes warehouse-scale allocation workloads: the
// five production applications with the highest malloc usage (§2.3), the
// four dedicated-server benchmarks, and a SPEC-like control. Each profile
// specifies an object size distribution calibrated to the fleet CDF of
// Fig. 7, a size-conditioned lifetime model matching Fig. 8, diurnal
// thread dynamics (Fig. 9a), and the malloc-cycle intensity of Fig. 5a.
package workload

import (
	"wsmalloc/internal/rng"
)

// Time units (virtual nanoseconds).
const (
	Microsecond = int64(1e3)
	Millisecond = int64(1e6)
	Second      = int64(1e9)
	Minute      = 60 * Second
	Hour        = 60 * Minute
	Day         = 24 * Hour
)

// LifetimeBand gives the lifetime distribution for objects up to MaxSize
// bytes.
type LifetimeBand struct {
	MaxSize int
	Dist    rng.Dist // nanoseconds
}

// LifetimeModel samples an object lifetime conditioned on its size,
// reproducing the size-vs-lifetime structure of Fig. 8 (small objects
// skew short-lived, large objects long-lived, with heavy tails in every
// band).
type LifetimeModel struct {
	Bands []LifetimeBand
}

// Sample draws a lifetime in nanoseconds for an object of the given size.
func (m LifetimeModel) Sample(r *rng.RNG, size int) int64 {
	for _, b := range m.Bands {
		if size <= b.MaxSize {
			return int64(b.Dist.Sample(r))
		}
	}
	last := m.Bands[len(m.Bands)-1]
	return int64(last.Dist.Sample(r))
}

// Profile describes one application's allocation behaviour.
type Profile struct {
	// Name identifies the workload ("spanner", "monarch", ...).
	Name string
	// SizeDist samples requested object sizes in bytes.
	SizeDist rng.Dist
	// Lifetime samples object lifetimes conditioned on size.
	Lifetime LifetimeModel
	// MallocFraction is the fraction of CPU cycles the application
	// spends in malloc/free (Fig. 5a: fleet 4.3%, top apps 3.6-10.1%).
	MallocFraction float64
	// MeanAllocGapNs is the mean virtual time between allocations per
	// active thread.
	MeanAllocGapNs float64
	// Threads models the worker-thread dynamics.
	Threads ThreadDynamics
	// CPUSet is the number of CPUs the control plane allows the
	// application to run on (co-location constraint, §4.1).
	CPUSet int
	// FleetWeight is the relative share of this workload when composing
	// a fleet mix.
	FleetWeight float64
	// PreloadBytes is the resident heap the process carries before the
	// measured window: production services hold caches, tables, and
	// model state built up over days. Preloaded objects are long-lived
	// within the run.
	PreloadBytes int64
	// PreloadDist samples preload block sizes; nil uses DefaultPreloadDist.
	PreloadDist rng.Dist
}

// DefaultPreloadDist models resident-state blocks: cache pages, tables,
// arena chunks (log-normal around ~270 KiB).
func DefaultPreloadDist() rng.Dist {
	return rng.LogNormalDist{Mu: 12.5, Sigma: 1.0, Min: 4 << 10, Max: 32 << 20}
}

// fleetSizeDist builds a size mixture matching Fig. 7: ~98% of objects
// below 1 KiB carrying ~28% of bytes, ~50% of bytes above 8 KiB, and
// ~22% of bytes above the 256 KiB size-class ceiling.
func fleetSizeDist() rng.Dist {
	return rng.NewMixture(
		// Small request-processing objects (mean ~60 B).
		rng.Component{Weight: 0.98, Dist: rng.LogNormalDist{Mu: 3.7, Sigma: 0.95, Min: 8, Max: 1024}},
		// Buffers in 1-8 KiB (mean ~2.5 KiB).
		rng.Component{Weight: 0.0185, Dist: rng.LogNormalDist{Mu: 7.65, Sigma: 0.55, Min: 1024, Max: 8 << 10}},
		// Large buffers 8-256 KiB (mean ~40 KiB).
		rng.Component{Weight: 0.00147, Dist: rng.LogNormalDist{Mu: 10.3, Sigma: 0.75, Min: 8 << 10, Max: 256 << 10}},
		// Huge allocations above the size-class ceiling (mean ~1 MiB).
		rng.Component{Weight: 0.00005, Dist: rng.ParetoDist{Xm: 260 << 10, Alpha: 1.35, Max: 64 << 20}},
	)
}

// fleetLifetime builds the Fig. 8 structure: lifetimes span ten decades;
// 46% of sub-KiB objects die within 1 ms; objects above 1 GiB mostly
// live beyond a day. All values in virtual ns.
func fleetLifetime() LifetimeModel {
	return LifetimeModel{Bands: []LifetimeBand{
		{MaxSize: 1 << 10, Dist: rng.NewMixture(
			rng.Component{Weight: 0.46, Dist: rng.LogNormalDist{Mu: 11.5, Sigma: 1.6, Min: 1e3, Max: 1e6}},  // < 1 ms
			rng.Component{Weight: 0.40, Dist: rng.LogNormalDist{Mu: 17.5, Sigma: 2.0, Min: 1e6, Max: 60e9}}, // ms..min
			rng.Component{Weight: 0.14, Dist: rng.ParetoDist{Xm: 60e9, Alpha: 0.9, Max: 7 * 86400e9}},       // heavy tail to a week
		)},
		{MaxSize: 256 << 10, Dist: rng.NewMixture(
			// Mid-size buffers churn: the long tail is thin, which is
			// what makes span capacity a good lifetime proxy (Fig. 16).
			rng.Component{Weight: 0.30, Dist: rng.LogNormalDist{Mu: 12.5, Sigma: 1.5, Min: 1e3, Max: 1e6}},
			rng.Component{Weight: 0.62, Dist: rng.LogNormalDist{Mu: 19.0, Sigma: 2.0, Min: 1e6, Max: 600e9}},
			rng.Component{Weight: 0.08, Dist: rng.ParetoDist{Xm: 600e9, Alpha: 0.85, Max: 7 * 86400e9}},
		)},
		{MaxSize: 1 << 30, Dist: rng.NewMixture(
			rng.Component{Weight: 0.25, Dist: rng.LogNormalDist{Mu: 15.0, Sigma: 1.8, Min: 1e4, Max: 1e9}},
			rng.Component{Weight: 0.40, Dist: rng.LogNormalDist{Mu: 22.0, Sigma: 1.6, Min: 1e9, Max: 3600e9}},
			rng.Component{Weight: 0.35, Dist: rng.ParetoDist{Xm: 3600e9, Alpha: 0.8, Max: 7 * 86400e9}},
		)},
		{MaxSize: 1 << 62, Dist: rng.NewMixture(
			// 65% of >1 GiB objects live longer than a day.
			rng.Component{Weight: 0.35, Dist: rng.LogNormalDist{Mu: 22.0, Sigma: 1.5, Min: 1e9, Max: 86400e9}},
			rng.Component{Weight: 0.65, Dist: rng.ParetoDist{Xm: 86400e9, Alpha: 1.1, Max: 7 * 86400e9}},
		)},
	}}
}

// shiftSizes scales a size distribution's mixture weights toward a
// band, used to differentiate application profiles.
func withWeight(w float64, d rng.Dist) rng.Component { return rng.Component{Weight: w, Dist: d} }

// Spanner models a distributed SQL database node with a large in-memory
// cache of storage data: block-sized buffers with long lifetimes on top
// of fleet-like request churn.
func Spanner() Profile {
	return Profile{
		Name: "spanner",
		SizeDist: rng.NewMixture(
			withWeight(0.90, rng.LogNormalDist{Mu: 4.2, Sigma: 1.0, Min: 8, Max: 2048}),
			withWeight(0.08, rng.LogNormalDist{Mu: 9.1, Sigma: 0.8, Min: 2 << 10, Max: 64 << 10}),
			withWeight(0.02, rng.LogNormalDist{Mu: 11.8, Sigma: 0.7, Min: 64 << 10, Max: 4 << 20}), // cache blocks
		),
		Lifetime:       fleetLifetime(),
		MallocFraction: 0.036,
		MeanAllocGapNs: 9600,
		Threads:        ThreadDynamics{Base: 28, Amplitude: 10, PeriodNs: 8 * Hour, Jitter: 0.15, SpikeProb: 0.02, SpikeBoost: 8},
		CPUSet:         48,
		FleetWeight:    0.24,
		PreloadBytes:   1536 << 20,
	}
}

// Monarch models the in-memory time-series store: torrents of small
// stream points, batch retirement, and long-lived series state.
func Monarch() Profile {
	return Profile{
		Name: "monarch",
		SizeDist: rng.NewMixture(
			withWeight(0.97, rng.LogNormalDist{Mu: 3.4, Sigma: 0.8, Min: 8, Max: 512}),
			withWeight(0.028, rng.LogNormalDist{Mu: 8.0, Sigma: 0.9, Min: 512, Max: 32 << 10}),
			withWeight(0.002, rng.LogNormalDist{Mu: 12.1, Sigma: 0.6, Min: 128 << 10, Max: 8 << 20}),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			// Stream points die in bulk when windows close; series state
			// is effectively immortal. This cohort structure is what
			// makes monarch the biggest winner from span prioritization
			// (Fig. 14: -2.76%).
			{MaxSize: 512, Dist: rng.NewMixture(
				withWeight(0.60, rng.LogNormalDist{Mu: 13.0, Sigma: 0.8, Min: 1e5, Max: 1e7}),
				withWeight(0.36, rng.LogNormalDist{Mu: 18.4, Sigma: 1.0, Min: 1e7, Max: 300e9}),
				withWeight(0.04, rng.ParetoDist{Xm: 300e9, Alpha: 0.8, Max: 7 * 86400e9}),
			)},
			{MaxSize: 1 << 62, Dist: fleetLifetime().Bands[2].Dist},
		}},
		MallocFraction: 0.101,
		MeanAllocGapNs: 3600,
		Threads:        ThreadDynamics{Base: 36, Amplitude: 14, PeriodNs: 6 * Hour, Jitter: 0.2, SpikeProb: 0.04, SpikeBoost: 12},
		CPUSet:         64,
		FleetWeight:    0.18,
		PreloadBytes:   768 << 20,
	}
}

// Bigtable models the tablet server: key/value blocks, memtable churn,
// and compaction buffers.
func Bigtable() Profile {
	return Profile{
		Name: "bigtable",
		SizeDist: rng.NewMixture(
			withWeight(0.95, rng.LogNormalDist{Mu: 4.6, Sigma: 1.1, Min: 8, Max: 4096}),
			withWeight(0.045, rng.LogNormalDist{Mu: 9.6, Sigma: 0.7, Min: 4 << 10, Max: 128 << 10}),
			withWeight(0.005, rng.LogNormalDist{Mu: 12.5, Sigma: 0.8, Min: 256 << 10, Max: 16 << 20}),
		),
		Lifetime:       fleetLifetime(),
		MallocFraction: 0.072,
		MeanAllocGapNs: 6000,
		Threads:        ThreadDynamics{Base: 32, Amplitude: 12, PeriodNs: 12 * Hour, Jitter: 0.12, SpikeProb: 0.02, SpikeBoost: 6},
		CPUSet:         56,
		FleetWeight:    0.2,
		PreloadBytes:   1024 << 20,
	}
}

// F1Query models the distributed query engine: bursty per-query arenas
// with almost everything dying at query end.
func F1Query() Profile {
	return Profile{
		Name: "f1-query",
		SizeDist: rng.NewMixture(
			withWeight(0.93, rng.LogNormalDist{Mu: 4.9, Sigma: 1.2, Min: 8, Max: 8192}),
			withWeight(0.068, rng.LogNormalDist{Mu: 9.9, Sigma: 0.9, Min: 8 << 10, Max: 256 << 10}),
			withWeight(0.002, rng.ParetoDist{Xm: 260 << 10, Alpha: 1.2, Max: 64 << 20}),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.80, rng.LogNormalDist{Mu: 16.0, Sigma: 1.4, Min: 1e5, Max: 30e9}), // query-scoped
				withWeight(0.19, rng.LogNormalDist{Mu: 20.0, Sigma: 1.2, Min: 30e9, Max: 3600e9}),
				withWeight(0.01, rng.ParetoDist{Xm: 3600e9, Alpha: 1.0, Max: 7 * 86400e9}),
			)},
		}},
		MallocFraction: 0.081,
		MeanAllocGapNs: 4400,
		Threads:        ThreadDynamics{Base: 24, Amplitude: 16, PeriodNs: 4 * Hour, Jitter: 0.3, SpikeProb: 0.08, SpikeBoost: 20},
		CPUSet:         64,
		FleetWeight:    0.16,
		PreloadBytes:   384 << 20,
	}
}

// Disk models the low-level distributed storage server: I/O buffers
// dominated by page-multiple sizes.
func Disk() Profile {
	return Profile{
		Name: "disk",
		SizeDist: rng.NewMixture(
			withWeight(0.80, rng.LogNormalDist{Mu: 4.0, Sigma: 1.0, Min: 8, Max: 2048}),
			withWeight(0.17, rng.NewDiscrete(
				[]float64{4 << 10, 8 << 10, 16 << 10, 64 << 10, 128 << 10},
				[]float64{6, 8, 4, 2, 1})),
			withWeight(0.03, rng.NewDiscrete(
				[]float64{512 << 10, 1 << 20, 2 << 20},
				[]float64{4, 2, 1})),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 2048, Dist: fleetLifetime().Bands[0].Dist},
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.70, rng.LogNormalDist{Mu: 15.5, Sigma: 1.2, Min: 1e5, Max: 10e9}), // I/O-scoped
				withWeight(0.30, rng.LogNormalDist{Mu: 21.0, Sigma: 1.5, Min: 10e9, Max: 86400e9}),
			)},
		}},
		MallocFraction: 0.064,
		MeanAllocGapNs: 5200,
		Threads:        ThreadDynamics{Base: 20, Amplitude: 6, PeriodNs: 24 * Hour, Jitter: 0.1, SpikeProb: 0.03, SpikeBoost: 10},
		CPUSet:         32,
		FleetWeight:    0.22,
		PreloadBytes:   768 << 20,
	}
}

// Fleet is the aggregate fleet profile used for fleet-wide rows.
func Fleet() Profile {
	return Profile{
		Name:           "fleet",
		SizeDist:       fleetSizeDist(),
		Lifetime:       fleetLifetime(),
		MallocFraction: 0.043,
		MeanAllocGapNs: 7200,
		Threads:        ThreadDynamics{Base: 26, Amplitude: 10, PeriodNs: 12 * Hour, Jitter: 0.18, SpikeProb: 0.03, SpikeBoost: 10},
		CPUSet:         64,
		FleetWeight:    1,
		PreloadBytes:   1024 << 20,
	}
}

// Redis models the single-threaded in-memory key-value store benchmark
// (redis-benchmark, 500 connections, 1000 B values).
func Redis() Profile {
	return Profile{
		Name: "redis",
		SizeDist: rng.NewMixture(
			withWeight(0.55, rng.NewDiscrete([]float64{1000}, []float64{1})), // value payloads
			withWeight(0.40, rng.LogNormalDist{Mu: 3.9, Sigma: 0.7, Min: 16, Max: 512}),
			withWeight(0.05, rng.LogNormalDist{Mu: 8.8, Sigma: 0.8, Min: 2 << 10, Max: 64 << 10}),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.55, rng.LogNormalDist{Mu: 13.0, Sigma: 1.2, Min: 1e4, Max: 1e8}), // request-scoped
				withWeight(0.45, rng.ParetoDist{Xm: 1e9, Alpha: 0.75, Max: 3600e9}),           // stored values
			)},
		}},
		MallocFraction: 0.058,
		MeanAllocGapNs: 2800,
		Threads:        ThreadDynamics{Base: 1, Amplitude: 0, PeriodNs: Hour, Jitter: 0, SpikeProb: 0, SpikeBoost: 0},
		CPUSet:         1, // single-threaded: one per-CPU cache (§4.1)
		FleetWeight:    0,
		PreloadBytes:   512 << 20,
	}
}

// DataPipeline models the single-process word-count pipeline over a 1 GiB
// input: huge token churn with phase-correlated deaths.
func DataPipeline() Profile {
	return Profile{
		Name: "data-pipeline",
		SizeDist: rng.NewMixture(
			withWeight(0.985, rng.LogNormalDist{Mu: 3.0, Sigma: 0.7, Min: 8, Max: 256}), // tokens
			withWeight(0.014, rng.LogNormalDist{Mu: 9.0, Sigma: 1.0, Min: 1 << 10, Max: 128 << 10}),
			withWeight(0.001, rng.NewDiscrete([]float64{1 << 20, 4 << 20, 16 << 20}, []float64{4, 2, 1})),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 256, Dist: rng.NewMixture(
				withWeight(0.75, rng.LogNormalDist{Mu: 12.0, Sigma: 1.0, Min: 1e3, Max: 1e7}),
				withWeight(0.25, rng.LogNormalDist{Mu: 18.0, Sigma: 1.0, Min: 1e7, Max: 120e9}), // counting table
			)},
			{MaxSize: 1 << 62, Dist: rng.LogNormalDist{Mu: 19.0, Sigma: 1.3, Min: 1e8, Max: 600e9}},
		}},
		MallocFraction: 0.093,
		MeanAllocGapNs: 2000,
		Threads:        ThreadDynamics{Base: 12, Amplitude: 0, PeriodNs: Hour, Jitter: 0.05, SpikeProb: 0, SpikeBoost: 0},
		CPUSet:         16,
		FleetWeight:    0,
		PreloadBytes:   256 << 20,
	}
}

// ImageProcessing models the image filter/transform server driven by a
// synthetic concurrent client generator.
func ImageProcessing() Profile {
	return Profile{
		Name: "image-processing",
		SizeDist: rng.NewMixture(
			withWeight(0.85, rng.LogNormalDist{Mu: 4.5, Sigma: 1.0, Min: 8, Max: 4096}),
			withWeight(0.10, rng.LogNormalDist{Mu: 11.0, Sigma: 0.9, Min: 16 << 10, Max: 256 << 10}), // tiles
			withWeight(0.05, rng.LogNormalDist{Mu: 14.3, Sigma: 0.8, Min: 512 << 10, Max: 32 << 20}), // frames
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.85, rng.LogNormalDist{Mu: 16.5, Sigma: 1.1, Min: 1e6, Max: 60e9}), // request-scoped
				withWeight(0.15, rng.LogNormalDist{Mu: 20.5, Sigma: 1.2, Min: 60e9, Max: 86400e9}),
			)},
		}},
		MallocFraction: 0.067,
		MeanAllocGapNs: 6400,
		Threads:        ThreadDynamics{Base: 16, Amplitude: 8, PeriodNs: 2 * Hour, Jitter: 0.25, SpikeProb: 0.05, SpikeBoost: 12},
		CPUSet:         32,
		FleetWeight:    0,
		PreloadBytes:   256 << 20,
	}
}

// Tensorflow models TF-Serving running InceptionV3: tensor arenas with
// Eigen's complex allocation behaviour (large aligned buffers plus small
// metadata churn).
func Tensorflow() Profile {
	return Profile{
		Name: "tensorflow",
		SizeDist: rng.NewMixture(
			withWeight(0.80, rng.LogNormalDist{Mu: 4.3, Sigma: 1.3, Min: 8, Max: 8192}),
			withWeight(0.15, rng.LogNormalDist{Mu: 11.5, Sigma: 1.2, Min: 8 << 10, Max: 256 << 10}),
			withWeight(0.05, rng.LogNormalDist{Mu: 14.8, Sigma: 1.0, Min: 256 << 10, Max: 64 << 20}), // tensors
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 8192, Dist: rng.NewMixture(
				withWeight(0.70, rng.LogNormalDist{Mu: 14.0, Sigma: 1.2, Min: 1e4, Max: 1e9}),
				withWeight(0.30, rng.LogNormalDist{Mu: 19.5, Sigma: 1.3, Min: 1e9, Max: 3600e9}),
			)},
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.60, rng.LogNormalDist{Mu: 16.8, Sigma: 1.0, Min: 1e6, Max: 60e9}), // inference-scoped
				withWeight(0.40, rng.ParetoDist{Xm: 60e9, Alpha: 0.9, Max: 86400e9}),           // model weights
			)},
		}},
		MallocFraction: 0.088,
		MeanAllocGapNs: 4800,
		Threads:        ThreadDynamics{Base: 14, Amplitude: 6, PeriodNs: 3 * Hour, Jitter: 0.2, SpikeProb: 0.04, SpikeBoost: 8},
		CPUSet:         28,
		FleetWeight:    0,
		PreloadBytes:   512 << 20,
	}
}

// SPECLike models a SPEC CPU2006-style benchmark: allocation-inactive in
// steady state with a bimodal lifetime split (program-lifetime or <1 ms),
// the control the paper uses to argue SPEC is unsuitable for allocator
// studies (§3).
func SPECLike() Profile {
	return Profile{
		Name: "spec-cpu2006",
		SizeDist: rng.NewMixture(
			withWeight(0.7, rng.LogNormalDist{Mu: 5.0, Sigma: 1.5, Min: 8, Max: 64 << 10}),
			withWeight(0.3, rng.LogNormalDist{Mu: 13.0, Sigma: 1.5, Min: 64 << 10, Max: 256 << 20}),
		),
		Lifetime: LifetimeModel{Bands: []LifetimeBand{
			{MaxSize: 1 << 62, Dist: rng.NewMixture(
				withWeight(0.45, rng.LogNormalDist{Mu: 10.5, Sigma: 1.2, Min: 1e3, Max: 1e6}), // < 1 ms
				withWeight(0.55, rng.Constant(30*86400e9)),                                    // program lifetime
			)},
		}},
		MallocFraction: 0.004,
		MeanAllocGapNs: 60000,
		Threads:        ThreadDynamics{Base: 1, Amplitude: 0, PeriodNs: Hour, Jitter: 0, SpikeProb: 0, SpikeBoost: 0},
		CPUSet:         1,
		FleetWeight:    0,
		PreloadBytes:   1024 << 20,
	}
}

// ProductionProfiles returns the five §2.3 production workloads.
func ProductionProfiles() []Profile {
	return []Profile{Spanner(), Monarch(), Bigtable(), F1Query(), Disk()}
}

// BenchmarkProfiles returns the four §2.3 dedicated-server benchmarks.
func BenchmarkProfiles() []Profile {
	return []Profile{Redis(), DataPipeline(), ImageProcessing(), Tensorflow()}
}

// AllProfiles returns fleet + production + benchmarks + SPEC.
func AllProfiles() []Profile {
	out := []Profile{Fleet()}
	out = append(out, ProductionProfiles()...)
	out = append(out, BenchmarkProfiles()...)
	out = append(out, SPECLike())
	return out
}

// ByName looks up a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
