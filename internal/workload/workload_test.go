package workload

import (
	"testing"

	"wsmalloc/internal/check"
	"wsmalloc/internal/core"
	"wsmalloc/internal/mem"
	"wsmalloc/internal/rng"
	"wsmalloc/internal/stats"
	"wsmalloc/internal/topology"
)

func TestProfilesWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, p := range AllProfiles() {
		if p.Name == "" || names[p.Name] {
			t.Fatalf("bad or duplicate profile name %q", p.Name)
		}
		names[p.Name] = true
		if p.MallocFraction <= 0 || p.MallocFraction > 0.2 {
			t.Errorf("%s: malloc fraction %v out of range", p.Name, p.MallocFraction)
		}
		if p.MeanAllocGapNs <= 0 || p.CPUSet < 1 || p.Threads.Base < 1 {
			t.Errorf("%s: bad rate/cpuset/threads", p.Name)
		}
		if len(p.Lifetime.Bands) == 0 {
			t.Errorf("%s: no lifetime bands", p.Name)
		}
	}
	if _, ok := ByName("spanner"); !ok {
		t.Fatal("ByName failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName false positive")
	}
}

func TestFleetSizeDistMatchesFig7(t *testing.T) {
	r := rng.New(1)
	p := Fleet()
	countHist := stats.NewLogHistogram(3, 31)
	memHist := stats.NewLogHistogram(3, 31)
	const n = 1500000
	for i := 0; i < n; i++ {
		s := p.SizeDist.Sample(r)
		countHist.Add(s)
		memHist.AddWeighted(s, s)
	}
	// Fig. 7: objects < 1 KiB are ~98% of objects but only ~28% of bytes.
	if got := countHist.CDFAt(1023); got < 0.96 || got > 0.995 {
		t.Errorf("count CDF at 1KiB = %.3f, want ~0.98", got)
	}
	if got := memHist.CDFAt(1023); got < 0.18 || got > 0.40 {
		t.Errorf("memory CDF at 1KiB = %.3f, want ~0.28", got)
	}
	// Objects > 8 KiB carry ~50% of bytes.
	if got := 1 - memHist.CDFAt(8<<10-1); got < 0.35 || got > 0.62 {
		t.Errorf("memory share above 8KiB = %.3f, want ~0.50", got)
	}
	// Above the 256 KiB ceiling: ~22% of bytes.
	if got := 1 - memHist.CDFAt(256<<10-1); got < 0.12 || got > 0.32 {
		t.Errorf("memory share above 256KiB = %.3f, want ~0.22", got)
	}
}

func TestFleetLifetimeMatchesFig8(t *testing.T) {
	r := rng.New(2)
	m := fleetLifetime()
	// 46% of sub-KiB objects die within 1 ms.
	short := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Sample(r, 256) <= int64(Millisecond) {
			short++
		}
	}
	if frac := float64(short) / n; frac < 0.40 || frac > 0.52 {
		t.Errorf("sub-KiB short-lived fraction %.3f, want ~0.46", frac)
	}
	// 65% of >1 GiB objects live beyond a day.
	long := 0
	for i := 0; i < n; i++ {
		if m.Sample(r, 2<<30) > Day {
			long++
		}
	}
	if frac := float64(long) / n; frac < 0.58 || frac > 0.72 {
		t.Errorf(">1GiB day-plus fraction %.3f, want ~0.65", frac)
	}
}

func TestSPECLifetimeBimodal(t *testing.T) {
	r := rng.New(3)
	p := SPECLike()
	short, long := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		l := p.Lifetime.Sample(r, 1024)
		switch {
		case l <= Millisecond:
			short++
		case l >= Day:
			long++
		}
	}
	if float64(short+long)/n < 0.95 {
		t.Errorf("SPEC lifetimes not bimodal: short=%d long=%d of %d", short, long, n)
	}
}

func TestThreadDynamicsFluctuates(t *testing.T) {
	r := rng.New(4)
	d := ThreadDynamics{Base: 30, Amplitude: 10, PeriodNs: Hour, Jitter: 0.15, SpikeProb: 0.02, SpikeBoost: 10}
	series := d.Series(r, 2*Hour, Minute)
	if len(series) != 120 {
		t.Fatalf("series length %d", len(series))
	}
	min, max := series[0], series[0]
	for _, v := range series {
		if v < 1 {
			t.Fatal("thread count below 1")
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 10 {
		t.Fatalf("dynamics too flat: min=%d max=%d", min, max)
	}
}

func TestThreadDynamicsFloorsAtOne(t *testing.T) {
	r := rng.New(5)
	d := ThreadDynamics{Base: 1, Amplitude: 5, PeriodNs: Hour, Jitter: 0.5}
	for t0 := int64(0); t0 < Hour; t0 += Minute {
		if d.Count(r, t0) < 1 {
			t.Fatal("count below 1")
		}
	}
}

func TestDriverRunBasics(t *testing.T) {
	a := core.New(core.OptimizedConfig(), topology.New(topology.Default()))
	opts := DefaultOptions(7)
	opts.Duration = 20 * Millisecond
	res := Run(Fleet(), a, opts)
	if res.Ops < 1000 {
		t.Fatalf("too few ops: %d", res.Ops)
	}
	if res.MallocNs <= 0 || res.TotalCPUNs <= res.MallocNs {
		t.Fatalf("time accounting: malloc=%v total=%v", res.MallocNs, res.TotalCPUNs)
	}
	if res.Stats.LiveObjects <= 0 {
		t.Fatal("no live objects at end")
	}
	if len(res.ThreadSeries) < 5 {
		t.Fatalf("thread series too short: %d", len(res.ThreadSeries))
	}
	if res.OpsPerSecond() <= 0 {
		t.Fatal("ops/sec")
	}
}

func TestDriverDeterministic(t *testing.T) {
	run := func() Result {
		a := core.New(core.OptimizedConfig(), topology.New(topology.Default()))
		opts := DefaultOptions(11)
		opts.Duration = 10 * Millisecond
		return Run(Monarch(), a, opts)
	}
	r1, r2 := run(), run()
	if r1.Ops != r2.Ops || r1.MallocNs != r2.MallocNs || r1.Stats != r2.Stats {
		t.Fatal("driver not deterministic")
	}
}

func TestDriverDrainRemaining(t *testing.T) {
	a := core.New(core.BaselineConfig(), topology.New(topology.Default()))
	opts := DefaultOptions(13)
	opts.Duration = 10 * Millisecond
	d := NewDriver(Bigtable(), a, opts)
	d.Run()
	if d.LiveObjects() == 0 {
		t.Fatal("expected live objects")
	}
	d.DrainRemaining()
	a.DrainCaches()
	st := a.Stats()
	if st.LiveObjects != 0 || st.Heap.UsedBytes != 0 {
		t.Fatalf("drain incomplete: %+v", st)
	}
}

func TestTimeWarpMonotoneAndIdentityBelowCutoff(t *testing.T) {
	a := core.New(core.BaselineConfig(), topology.New(topology.Default()))
	d := NewDriver(Fleet(), a, DefaultOptions(1))
	if got := d.warp(1000); got != 1000 {
		t.Fatalf("warp(1000) = %d", got)
	}
	prev := int64(0)
	for _, life := range []int64{Millisecond, Second, Minute, Hour, Day} {
		w := d.warp(life)
		if w <= prev {
			t.Fatalf("warp not monotone at %d: %d <= %d", life, w, prev)
		}
		prev = w
	}
	if w := d.warp(Day); w >= Day {
		t.Fatal("warp did not compress day-scale lifetime")
	}
}

func TestSPECNearZeroMallocShare(t *testing.T) {
	a := core.New(core.BaselineConfig(), topology.New(topology.Default()))
	opts := DefaultOptions(17)
	opts.Duration = 20 * Millisecond
	res := Run(SPECLike(), a, opts)
	fleetA := core.New(core.BaselineConfig(), topology.New(topology.Default()))
	fleetRes := Run(Fleet(), fleetA, opts)
	if res.Ops*10 > fleetRes.Ops {
		t.Fatalf("SPEC allocates too much: %d vs fleet %d", res.Ops, fleetRes.Ops)
	}
}

func TestDriverSnapshotCallback(t *testing.T) {
	a := core.New(core.BaselineConfig(), topology.New(topology.Default()))
	opts := DefaultOptions(19)
	opts.Duration = 10 * Millisecond
	calls := 0
	opts.Snapshot = func(now int64) { calls++ }
	opts.SnapshotEveryNs = Millisecond
	Run(Fleet(), a, opts)
	if calls < 8 || calls > 11 {
		t.Fatalf("snapshot calls = %d, want ~10", calls)
	}
}

// TestDriverChaosGracefulDegradation runs a profile under an aggressive
// fault plan with periodic audits and asserts the driver degrades
// gracefully: failed allocations are dropped and counted, never
// panicked on, frees keep flowing so pressure can clear, and the
// periodic invariant audits stay clean throughout.
func TestDriverChaosGracefulDegradation(t *testing.T) {
	cfg := core.OptimizedConfig()
	cfg.Faults = mem.FaultPlan{Seed: 3, MmapFailureRate: 0.05, MappedBytesBudget: 512 << 20}
	cfg.Check = check.Config{Mode: check.ModeSampled, SampleEvery: 64, MaxViolations: 64}
	a := core.New(cfg, topology.New(topology.Default()))

	opts := DefaultOptions(21)
	opts.Duration = 30 * Millisecond
	opts.AuditEveryNs = 5 * Millisecond
	res := Run(Bigtable(), a, opts)

	if res.Ops < 1000 {
		t.Fatalf("driver made no progress under chaos: %d ops", res.Ops)
	}
	st := a.Stats()
	if st.Faults.InjectedFailures == 0 && st.Faults.BudgetFailures == 0 {
		t.Fatal("fault plan injected nothing")
	}
	if res.Audits < 5 {
		t.Fatalf("expected >= 5 audits (periodic + final), got %d", res.Audits)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("audit violations under chaos: %v", res.Violations)
	}
	// Under a 512 MiB budget and bigtable's preload, some allocations
	// should actually have failed and been absorbed.
	if st.OOMErrors > 0 && res.AllocFailures == 0 {
		t.Fatal("allocator saw OOMs the driver did not record")
	}
}
