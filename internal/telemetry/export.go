package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metricPrefix namespaces every exported Prometheus series.
const metricPrefix = "wsmalloc_"

// fmtFloat renders histogram counts and bucket bounds compactly; sink
// weights are integer-valued so this usually prints integers. Integral
// values are forced through 'f' so power-of-two bounds never degrade to
// scientific notation (1048576, not 1.048576e+06).
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a Prometheus label value per the text exposition
// format: backslash, double quote, and newline must be escaped, in that
// order of substitution so an injected `\n` survives as `\\n`.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// armPairs renders the snapshot's identity labels (arm="...",
// design="...") with a trailing comma, or "" when the snapshot carries
// neither. The design string names the full allocator design point
// ("percpu=hetero,tc=nuca,...") so series from a sweep are unambiguous.
func armPairs(s Snapshot) string {
	var b strings.Builder
	if s.Label != "" {
		b.WriteString(`arm="` + escapeLabel(s.Label) + `",`)
	}
	if s.Design != "" {
		b.WriteString(`design="` + escapeLabel(s.Design) + `",`)
	}
	return b.String()
}

// metricHelp is the curated # HELP text for the exporter's well-known
// families; helpFor synthesizes a sensible line for anything else so
// every family always carries HELP (the conformance test enforces it).
var metricHelp = map[string]string{
	"percpu_miss_total":              "Per-CPU cache misses that fell through to the transfer cache.",
	"percpu_capacity_steal_total":    "Per-CPU cache capacity steals by the resizer.",
	"percpu_decay_total":             "Idle size-class decay reclaims in the per-CPU caches.",
	"transfer_hit_total":             "Transfer-cache hits in the requester's NUCA domain.",
	"transfer_legacy_fallback_total": "Transfer-cache NUCA misses satisfied by the legacy shared array.",
	"transfer_miss_total":            "Transfer-cache misses that fetched a batch from the central free list.",
	"transfer_plunder_total":         "Cold-object plunder passes over the transfer cache.",
	"transfer_overflow_total":        "Freed batches that overflowed the transfer cache into the central free list.",
	"cfl_span_move_total":            "Central-free-list span moves between occupancy lists.",
	"cfl_span_create_total":          "Spans grown from the page heap by the central free lists.",
	"cfl_span_release_total":         "Fully-freed spans returned to the page heap.",
	"filler_pack_total":              "Small spans packed into hugepages by the filler.",
	"filler_unpack_total":            "Spans freed out of filler hugepages.",
	"subrelease_total":               "Broken hugepages with tail pages subreleased to the OS.",
	"heap_pressure_total":            "Emergency releases forced by commit pressure.",
	"os_mmap_total":                  "Simulated OS hugepage-run mappings.",
	"os_munmap_total":                "Simulated OS hugepage unmappings.",
	"heap_bytes":                     "Committed heap bytes backing the allocator.",
	"live_objects":                   "Live (allocated, not yet freed) objects.",
	"live_requested_bytes":           "Bytes currently live as requested by callers.",
	"live_rounded_bytes":             "Bytes currently live after size-class rounding.",
	"peak_live_requested_bytes":      "High-water mark of live requested bytes.",
	"mallocs":                        "Cumulative allocations served.",
	"frees":                          "Cumulative frees served.",
	"sampled_allocs":                 "Allocations picked by the Poisson heap-profile sampler.",
	"cum_allocated_bytes":            "Cumulative bytes allocated over the run.",
	"oom_errors":                     "Allocation failures surfaced to callers.",
	"free_errors":                    "Invalid frees detected.",
	"fault_injected_mmap_failures":   "Injected mmap failures from the fault plan.",
	"fault_budget_denials":           "Mappings denied by the committed-byte budget.",
	"shadow_violations":              "Shadow-heap sanitizer violations.",
	"frag_external_bytes":            "External fragmentation: committed but unallocatable bytes.",
	"frag_internal_bytes":            "Internal fragmentation: size-class rounding waste.",
	"frag_percpu_bytes":              "Bytes idle in per-CPU caches.",
	"frag_transfer_bytes":            "Bytes idle in the transfer cache.",
	"frag_cfl_bytes":                 "Bytes idle on central-free-list spans.",
	"frag_pageheap_bytes":            "Bytes idle in the page heap.",
	"fragmentation_ratio_ppm":        "Fragmentation ratio in parts per million.",
	"hugepage_coverage_ppm":          "Fraction of heap backed by intact hugepages, in parts per million.",
	"cfl_spans":                      "Spans currently owned by the central free lists.",
	"cfl_spans_created":              "Cumulative spans created by the central free lists.",
	"cfl_spans_released":             "Cumulative spans released back to the page heap.",
	"alloc_size_bytes":               "Requested allocation sizes in bytes.",
	"time_cpucache_ns":               "Modeled virtual nanoseconds spent in the per-CPU cache tier.",
	"time_transfer_ns":               "Modeled virtual nanoseconds spent in the transfer-cache tier.",
	"time_cfl_ns":                    "Modeled virtual nanoseconds spent in the central free lists.",
	"time_pageheap_ns":               "Modeled virtual nanoseconds spent in the page heap.",
	"time_mmap_ns":                   "Modeled virtual nanoseconds spent in simulated mmap calls.",
	"time_prefetch_ns":               "Modeled virtual nanoseconds spent prefetching.",
	"time_sampled_ns":                "Modeled virtual nanoseconds spent in sampling slow paths.",
	"time_other_ns":                  "Modeled virtual nanoseconds not attributed to a tier.",
	"gwp_windows_total":              "Profile windows appended to the continuous-profiling warehouse.",
	"gwp_last_window_index":          "Raw-tier index of the newest warehouse window behind this scrape (window ID raw-<index>).",
}

// helpFor returns the HELP text for a family, synthesizing one from the
// name's shape when it is not curated.
func helpFor(name, typ string) string {
	if h, ok := metricHelp[name]; ok {
		return h
	}
	stem := strings.ReplaceAll(strings.TrimSuffix(name, "_total"), "_", " ")
	switch {
	case typ == "counter":
		return "Cumulative count of " + stem + " events."
	case typ == "histogram":
		return "Distribution of " + stem + "."
	default:
		return "Point-in-time value of " + stem + "."
	}
}

// armLabel renders the {arm="...",design="..."} selector for a labeled
// snapshot.
func armLabel(s Snapshot) string {
	pairs := armPairs(s)
	if pairs == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(pairs, ",") + "}"
}

// collectNames returns the sorted union of metric names across
// snapshots, per section.
func collectNames(snaps []Snapshot, pick func(Snapshot) []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range snaps {
		for _, n := range pick(s) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders the snapshots in the Prometheus text
// exposition format. Each snapshot's label becomes an arm="..." label
// (the fleet A/B exports control and experiment side by side); log2
// histograms become cumulative le-bucket series. Output is byte-stable
// for equal snapshots: names are sorted and values are integers.
func WritePrometheus(w io.Writer, snaps ...Snapshot) error {
	find := func(ms []MetricValue, name string) (int64, bool) {
		for _, m := range ms {
			if m.Name == name {
				return m.Value, true
			}
		}
		return 0, false
	}
	emit := func(names []string, typ string, get func(Snapshot) []MetricValue) error {
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s %s\n",
				metricPrefix, name, helpFor(name, typ), metricPrefix, name, typ); err != nil {
				return err
			}
			for _, s := range snaps {
				if v, ok := find(get(s), name); ok {
					if _, err := fmt.Fprintf(w, "%s%s%s %d\n", metricPrefix, name, armLabel(s), v); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	// The design-point info gauge: one always-1 series per arm whose
	// labels carry the arm's full design string, so dashboards and
	// profdiff can join any metric to the design that produced it
	// without parsing free text. Emitted first, before the sorted
	// metric families.
	hasDesign := false
	for _, s := range snaps {
		if s.Design != "" {
			hasDesign = true
		}
	}
	if hasDesign {
		if _, err := fmt.Fprintf(w, "# HELP %sdesign_point active allocator design point (info gauge: value is always 1, labels carry the design)\n# TYPE %sdesign_point gauge\n",
			metricPrefix, metricPrefix); err != nil {
			return err
		}
		for _, s := range snaps {
			if s.Design == "" {
				continue
			}
			if _, err := fmt.Fprintf(w, "%sdesign_point%s 1\n", metricPrefix, armLabel(s)); err != nil {
				return err
			}
		}
	}

	counterNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Counters))
		for i, m := range s.Counters {
			out[i] = m.Name
		}
		return out
	})
	if err := emit(counterNames, "counter", func(s Snapshot) []MetricValue { return s.Counters }); err != nil {
		return err
	}
	gaugeNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Gauges))
		for i, m := range s.Gauges {
			out[i] = m.Name
		}
		return out
	})
	if err := emit(gaugeNames, "gauge", func(s Snapshot) []MetricValue { return s.Gauges }); err != nil {
		return err
	}

	histNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Histograms))
		for i, h := range s.Histograms {
			out[i] = h.Name
		}
		return out
	})
	for _, name := range histNames {
		if _, err := fmt.Fprintf(w, "# HELP %s%s %s\n# TYPE %s%s histogram\n",
			metricPrefix, name, helpFor(name, "histogram"), metricPrefix, name); err != nil {
			return err
		}
		for _, s := range snaps {
			for _, h := range s.Histograms {
				if h.Name != name {
					continue
				}
				cum := 0.0
				for _, b := range h.Buckets {
					cum += b.Count
					if _, err := fmt.Fprintf(w, "%s%s_bucket{%sle=%q} %s\n",
						metricPrefix, name, armPairs(s), fmtFloat(b.Hi), fmtFloat(cum)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s%s_bucket{%sle=\"+Inf\"} %s\n",
					metricPrefix, name, armPairs(s), fmtFloat(h.Total)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s%s_count%s %s\n",
					metricPrefix, name, armLabel(s), fmtFloat(h.Total)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON writes v as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteMallocz renders the human-readable dump, modeled on TCMalloc's
// statsz page: a gauge block, an event-counter block, and per-histogram
// quantile lines with an ASCII bucket sketch.
func WriteMallocz(w io.Writer, snaps ...Snapshot) error {
	rule := strings.Repeat("-", 64)
	for _, s := range snaps {
		title := "MALLOC telemetry"
		if s.Label != "" {
			title += " (" + s.Label + ")"
		}
		if s.Design != "" {
			title += " design=" + s.Design
		}
		if _, err := fmt.Fprintf(w, "%s\n%s @ %d virtual ns\n%s\n", rule, title, s.NowNs, rule); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "MALLOC: %15d  %s\n", g.Value, g.Name); err != nil {
				return err
			}
		}
		if len(s.Counters) > 0 {
			if _, err := fmt.Fprintf(w, "%s\nMALLOC events\n%s\n", rule, rule); err != nil {
				return err
			}
			for _, c := range s.Counters {
				if _, err := fmt.Fprintf(w, "MALLOC: %15d  %s\n", c.Value, c.Name); err != nil {
					return err
				}
			}
		}
		for _, h := range s.Histograms {
			if _, err := fmt.Fprintf(w, "%s\nMALLOC histogram %s: n=%s p50=%.4g p95=%.4g p99=%.4g\n%s\n",
				rule, h.Name, fmtFloat(h.Total), h.P50, h.P95, h.P99, rule); err != nil {
				return err
			}
			maxC := 0.0
			for _, b := range h.Buckets {
				if b.Count > maxC {
					maxC = b.Count
				}
			}
			for _, b := range h.Buckets {
				bar := 0
				if maxC > 0 {
					bar = int(40 * b.Count / maxC)
				}
				if _, err := fmt.Fprintf(w, "MALLOC: [%12s, %12s) %12s %s\n",
					fmtFloat(b.Lo), fmtFloat(b.Hi), fmtFloat(b.Count), strings.Repeat("#", bar)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonDoc is the -metrics-out JSON schema shared by the CLIs. The
// embedded TraceDump contributes "trace" plus the "trace_total" /
// "trace_dropped" loss counters, so a JSON consumer can tell whether
// the ring buffer discarded history.
type jsonDoc struct {
	Snapshots []Snapshot `json:"snapshots"`
	Series    []Snapshot `json:"series,omitempty"`
	TraceDump
}

// WriteFiles writes the three export formats next to each other:
// base.prom (Prometheus text), base.json, and base.mallocz. series and
// trace, when populated, ride along inside the JSON document. It
// returns the paths written.
func WriteFiles(base string, snaps []Snapshot, series []Snapshot, trace TraceDump) ([]string, error) {
	type export struct {
		path  string
		write func(io.Writer) error
	}
	exports := []export{
		{base + ".prom", func(w io.Writer) error { return WritePrometheus(w, snaps...) }},
		{base + ".json", func(w io.Writer) error {
			return WriteJSON(w, jsonDoc{Snapshots: snaps, Series: series, TraceDump: trace})
		}},
		{base + ".mallocz", func(w io.Writer) error { return WriteMallocz(w, snaps...) }},
	}
	var paths []string
	for _, e := range exports {
		f, err := os.Create(e.path)
		if err != nil {
			return paths, err
		}
		err = e.write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, err
		}
		paths = append(paths, e.path)
	}
	return paths, nil
}
