package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metricPrefix namespaces every exported Prometheus series.
const metricPrefix = "wsmalloc_"

// fmtFloat renders histogram counts and bucket bounds compactly; sink
// weights are integer-valued so this usually prints integers. Integral
// values are forced through 'f' so power-of-two bounds never degrade to
// scientific notation (1048576, not 1.048576e+06).
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// armPairs renders the snapshot's identity labels (arm="...",
// design="...") with a trailing comma, or "" when the snapshot carries
// neither. The design string names the full allocator design point
// ("percpu=hetero,tc=nuca,...") so series from a sweep are unambiguous.
func armPairs(s Snapshot) string {
	var b strings.Builder
	if s.Label != "" {
		b.WriteString(`arm="` + s.Label + `",`)
	}
	if s.Design != "" {
		b.WriteString(`design="` + s.Design + `",`)
	}
	return b.String()
}

// armLabel renders the {arm="...",design="..."} selector for a labeled
// snapshot.
func armLabel(s Snapshot) string {
	pairs := armPairs(s)
	if pairs == "" {
		return ""
	}
	return "{" + strings.TrimSuffix(pairs, ",") + "}"
}

// collectNames returns the sorted union of metric names across
// snapshots, per section.
func collectNames(snaps []Snapshot, pick func(Snapshot) []string) []string {
	seen := map[string]bool{}
	var names []string
	for _, s := range snaps {
		for _, n := range pick(s) {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	return names
}

// WritePrometheus renders the snapshots in the Prometheus text
// exposition format. Each snapshot's label becomes an arm="..." label
// (the fleet A/B exports control and experiment side by side); log2
// histograms become cumulative le-bucket series. Output is byte-stable
// for equal snapshots: names are sorted and values are integers.
func WritePrometheus(w io.Writer, snaps ...Snapshot) error {
	find := func(ms []MetricValue, name string) (int64, bool) {
		for _, m := range ms {
			if m.Name == name {
				return m.Value, true
			}
		}
		return 0, false
	}
	emit := func(names []string, typ string, get func(Snapshot) []MetricValue) error {
		for _, name := range names {
			if _, err := fmt.Fprintf(w, "# TYPE %s%s %s\n", metricPrefix, name, typ); err != nil {
				return err
			}
			for _, s := range snaps {
				if v, ok := find(get(s), name); ok {
					if _, err := fmt.Fprintf(w, "%s%s%s %d\n", metricPrefix, name, armLabel(s), v); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}

	counterNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Counters))
		for i, m := range s.Counters {
			out[i] = m.Name
		}
		return out
	})
	if err := emit(counterNames, "counter", func(s Snapshot) []MetricValue { return s.Counters }); err != nil {
		return err
	}
	gaugeNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Gauges))
		for i, m := range s.Gauges {
			out[i] = m.Name
		}
		return out
	})
	if err := emit(gaugeNames, "gauge", func(s Snapshot) []MetricValue { return s.Gauges }); err != nil {
		return err
	}

	histNames := collectNames(snaps, func(s Snapshot) []string {
		out := make([]string, len(s.Histograms))
		for i, h := range s.Histograms {
			out[i] = h.Name
		}
		return out
	})
	for _, name := range histNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s histogram\n", metricPrefix, name); err != nil {
			return err
		}
		for _, s := range snaps {
			for _, h := range s.Histograms {
				if h.Name != name {
					continue
				}
				cum := 0.0
				for _, b := range h.Buckets {
					cum += b.Count
					if _, err := fmt.Fprintf(w, "%s%s_bucket{%sle=%q} %s\n",
						metricPrefix, name, armPairs(s), fmtFloat(b.Hi), fmtFloat(cum)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s%s_bucket{%sle=\"+Inf\"} %s\n",
					metricPrefix, name, armPairs(s), fmtFloat(h.Total)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s%s_count%s %s\n",
					metricPrefix, name, armLabel(s), fmtFloat(h.Total)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// WriteJSON writes v as indented JSON with a trailing newline.
func WriteJSON(w io.Writer, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteMallocz renders the human-readable dump, modeled on TCMalloc's
// statsz page: a gauge block, an event-counter block, and per-histogram
// quantile lines with an ASCII bucket sketch.
func WriteMallocz(w io.Writer, snaps ...Snapshot) error {
	rule := strings.Repeat("-", 64)
	for _, s := range snaps {
		title := "MALLOC telemetry"
		if s.Label != "" {
			title += " (" + s.Label + ")"
		}
		if s.Design != "" {
			title += " design=" + s.Design
		}
		if _, err := fmt.Fprintf(w, "%s\n%s @ %d virtual ns\n%s\n", rule, title, s.NowNs, rule); err != nil {
			return err
		}
		for _, g := range s.Gauges {
			if _, err := fmt.Fprintf(w, "MALLOC: %15d  %s\n", g.Value, g.Name); err != nil {
				return err
			}
		}
		if len(s.Counters) > 0 {
			if _, err := fmt.Fprintf(w, "%s\nMALLOC events\n%s\n", rule, rule); err != nil {
				return err
			}
			for _, c := range s.Counters {
				if _, err := fmt.Fprintf(w, "MALLOC: %15d  %s\n", c.Value, c.Name); err != nil {
					return err
				}
			}
		}
		for _, h := range s.Histograms {
			if _, err := fmt.Fprintf(w, "%s\nMALLOC histogram %s: n=%s p50=%.4g p95=%.4g p99=%.4g\n%s\n",
				rule, h.Name, fmtFloat(h.Total), h.P50, h.P95, h.P99, rule); err != nil {
				return err
			}
			maxC := 0.0
			for _, b := range h.Buckets {
				if b.Count > maxC {
					maxC = b.Count
				}
			}
			for _, b := range h.Buckets {
				bar := 0
				if maxC > 0 {
					bar = int(40 * b.Count / maxC)
				}
				if _, err := fmt.Fprintf(w, "MALLOC: [%12s, %12s) %12s %s\n",
					fmtFloat(b.Lo), fmtFloat(b.Hi), fmtFloat(b.Count), strings.Repeat("#", bar)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonDoc is the -metrics-out JSON schema shared by the CLIs. The
// embedded TraceDump contributes "trace" plus the "trace_total" /
// "trace_dropped" loss counters, so a JSON consumer can tell whether
// the ring buffer discarded history.
type jsonDoc struct {
	Snapshots []Snapshot `json:"snapshots"`
	Series    []Snapshot `json:"series,omitempty"`
	TraceDump
}

// WriteFiles writes the three export formats next to each other:
// base.prom (Prometheus text), base.json, and base.mallocz. series and
// trace, when populated, ride along inside the JSON document. It
// returns the paths written.
func WriteFiles(base string, snaps []Snapshot, series []Snapshot, trace TraceDump) ([]string, error) {
	type export struct {
		path  string
		write func(io.Writer) error
	}
	exports := []export{
		{base + ".prom", func(w io.Writer) error { return WritePrometheus(w, snaps...) }},
		{base + ".json", func(w io.Writer) error {
			return WriteJSON(w, jsonDoc{Snapshots: snaps, Series: series, TraceDump: trace})
		}},
		{base + ".mallocz", func(w io.Writer) error { return WriteMallocz(w, snaps...) }},
	}
	var paths []string
	for _, e := range exports {
		f, err := os.Create(e.path)
		if err != nil {
			return paths, err
		}
		err = e.write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, err
		}
		paths = append(paths, e.path)
	}
	return paths, nil
}
