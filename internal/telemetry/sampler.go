package telemetry

import "sync"

// Sampler snapshots the registry on a fixed virtual-clock cadence. It
// is driven by Allocator.Tick, so cadence is measured in simulated
// nanoseconds: the same seed yields the same sample timestamps on every
// run, which keeps time-series exports deterministic.
type Sampler struct {
	everyNs int64
	snap    func(nowNs int64) Snapshot

	mu      sync.Mutex
	nextAt  int64
	samples []Snapshot
}

func newSampler(everyNs int64, snap func(int64) Snapshot) *Sampler {
	return &Sampler{everyNs: everyNs, snap: snap, nextAt: everyNs}
}

// maybeSample takes one snapshot if nowNs reached the next deadline,
// then advances the deadline past nowNs (a coarse tick that jumps over
// several periods still records one sample, timestamped with the tick).
func (s *Sampler) maybeSample(nowNs int64) {
	s.mu.Lock()
	if nowNs < s.nextAt {
		s.mu.Unlock()
		return
	}
	for s.nextAt <= nowNs {
		s.nextAt += s.everyNs
	}
	s.mu.Unlock()
	// Snapshot outside the sampler lock: snap walks the registry and
	// may call the gauge-fill callback.
	snap := s.snap(nowNs)
	s.mu.Lock()
	s.samples = append(s.samples, snap)
	s.mu.Unlock()
}

// samplesCopy returns the collected series.
func (s *Sampler) samplesCopy() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Snapshot(nil), s.samples...)
}
