package telemetry

import (
	"encoding/json"
	"sync"

	"wsmalloc/internal/snapshot"
	"wsmalloc/internal/stats"
)

// SeriesRing is a bounded ring of per-tick registry snapshots — the
// streaming replacement for the Sampler's keep-everything slice. A
// long-lived fleet daemon appends one fleet-level snapshot per tick;
// the ring retains the most recent capacity ticks in constant memory
// and counts what it discarded, mirroring the Tracer's loss
// accounting. All methods are safe for concurrent use, so HTTP
// handlers can read the series while the tick loop appends.
type SeriesRing struct {
	mu      sync.Mutex
	buf     []Snapshot
	next    int
	full    bool
	total   int64
	dropped int64
}

// NewSeriesRing returns a ring retaining the last capacity snapshots
// (minimum 1).
func NewSeriesRing(capacity int) *SeriesRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SeriesRing{buf: make([]Snapshot, 0, capacity)}
}

// Append records one snapshot, overwriting the oldest when full.
func (r *SeriesRing) Append(s Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if !r.full && len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
		if len(r.buf) == cap(r.buf) {
			r.full = true
			r.next = 0
		}
		return
	}
	r.dropped++
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
}

// Snapshots returns the retained snapshots oldest-first (a copy).
func (r *SeriesRing) Snapshots() []Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Snapshot, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Latest returns the most recent snapshot, if any.
func (r *SeriesRing) Latest() (Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return Snapshot{}, false
	}
	if r.full {
		return r.buf[(r.next+len(r.buf)-1)%len(r.buf)], true
	}
	return r.buf[len(r.buf)-1], true
}

// Len returns the number of retained snapshots.
func (r *SeriesRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total returns how many snapshots were ever appended.
func (r *SeriesRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dropped returns how many snapshots the ring discarded.
func (r *SeriesRing) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// EncodeState serializes the ring so a daemon checkpoint restores the
// same retained series. Snapshots are stored as one JSON blob (like
// the Sampler's samples): they are export-shaped data, and Go's JSON
// float round-trip is exact, so resume stays bit-identical.
func (r *SeriesRing) EncodeState(e *snapshot.Encoder) {
	r.mu.Lock()
	snaps := make([]Snapshot, 0, len(r.buf))
	if r.full {
		snaps = append(snaps, r.buf[r.next:]...)
		snaps = append(snaps, r.buf[:r.next]...)
	} else {
		snaps = append(snaps, r.buf...)
	}
	total, dropped, capacity := r.total, r.dropped, cap(r.buf)
	r.mu.Unlock()

	e.Section("seriesring")
	e.Int(capacity)
	e.I64(total)
	e.I64(dropped)
	blob, err := json.Marshal(snaps)
	if err != nil {
		blob = []byte("[]")
	}
	e.Bytes(blob)
}

// DecodeState restores a ring saved by EncodeState. The constructed
// capacity must match the snapshot's.
func (r *SeriesRing) DecodeState(d *snapshot.Decoder) {
	d.Section("seriesring")
	capacity := d.Int()
	total, dropped := d.I64(), d.I64()
	blob := d.Bytes()
	if d.Err() != nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if capacity != cap(r.buf) {
		d.Fail("telemetry: series ring capacity %d in snapshot, %d constructed", capacity, cap(r.buf))
		return
	}
	var snaps []Snapshot
	if err := json.Unmarshal(blob, &snaps); err != nil {
		d.Fail("telemetry: series ring payload: %v", err)
		return
	}
	if len(snaps) > capacity {
		d.Fail("telemetry: series ring holds %d snapshots, capacity %d", len(snaps), capacity)
		return
	}
	r.buf = append(r.buf[:0], snaps...)
	r.full = len(r.buf) == capacity
	r.next = 0
	r.total, r.dropped = total, dropped
}

// SketchValue is one exported quantile sketch: streamed fleet-level
// distribution quantiles with exact count/min/max, the constant-memory
// counterpart of HistogramValue.
type SketchValue struct {
	Name  string  `json:"name"`
	Count float64 `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// SnapshotSketch renders a stats.Sketch in exporter form.
func SnapshotSketch(name string, sk *stats.Sketch) SketchValue {
	return SketchValue{
		Name:  name,
		Count: sk.Count(),
		Min:   sk.Min(),
		Max:   sk.Max(),
		P50:   sk.Quantile(0.50),
		P90:   sk.Quantile(0.90),
		P99:   sk.Quantile(0.99),
	}
}
