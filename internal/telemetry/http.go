package telemetry

import (
	"fmt"
	"io"
	"net/http"
)

// Endpoints bundles the accessors behind the live observability pages.
// Every field is optional; a nil accessor serves empty output for its
// endpoint. Heapz and PageHeapz are render callbacks (rather than data
// accessors) so this package never imports the profiler or the
// allocator core — the caller closes over them and writes directly.
type Endpoints struct {
	// Snapshots backs /metricsz.
	Snapshots func() []Snapshot
	// Series, when set, contributes the retained per-tick series ring to
	// /metricsz?format=json (the "series" key), the live counterpart of
	// the -metrics-out JSON document's sampler series.
	Series func() []Snapshot
	// Trace backs /tracez; the dump carries the ring's loss counters.
	Trace func() TraceDump
	// Heapz backs /heapz. format is "" (text) or "json".
	Heapz func(w io.Writer, format string) error
	// PageHeapz backs /pageheapz. format is "" (text) or "json".
	PageHeapz func(w io.Writer, format string) error
	// Status backs /statusz; the returned value is rendered as JSON.
	// Nil serves a minimal liveness document.
	Status func() any
	// Health backs /healthz; a non-nil error turns the page into a 503
	// carrying the error text. Nil means "healthy whenever serving".
	Health func() error
}

// readOnly rejects anything but GET and HEAD with 405, the guard every
// observability page shares (mutating admin endpoints live on their own
// mux in the daemon, POST-only).
func readOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// NewMux serves the live observability endpoints:
//
//	/metricsz          Prometheus text (default), ?format=json, ?format=text (mallocz)
//	/tracez            recent events + drop counters, plain text or ?format=json
//	/heapz             sampled heap profile views, pprof-style text or ?format=json
//	/pageheapz         hugepage occupancy + fragmentation, text or ?format=json
//	/healthz           liveness: "ok" or a 503 with the health error
//	/statusz           JSON service status from the Status accessor
//
// All pages are read-only: non-GET/HEAD methods get 405.
//
// Accessors are called per request, so the handler always reports the
// caller's latest state (the CLIs pass closures over the finished run;
// a long-lived embedder could pass live accessors).
func NewMux(ep Endpoints) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ep.Health != nil {
			if err := ep.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unhealthy: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	}))
	mux.HandleFunc("/statusz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var st any
		if ep.Status != nil {
			st = ep.Status()
		} else {
			st = map[string]any{"serving": true}
		}
		_ = WriteJSON(w, st)
	}))
	mux.HandleFunc("/metricsz", readOnly(func(w http.ResponseWriter, r *http.Request) {
		var ss []Snapshot
		if ep.Snapshots != nil {
			ss = ep.Snapshots()
		}
		switch r.URL.Query().Get("format") {
		case "json":
			var series []Snapshot
			if ep.Series != nil {
				series = ep.Series()
			}
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, jsonDoc{Snapshots: ss, Series: series})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteMallocz(w, ss...)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = WritePrometheus(w, ss...)
		}
	}))
	mux.HandleFunc("/tracez", readOnly(func(w http.ResponseWriter, r *http.Request) {
		var dump TraceDump
		if ep.Trace != nil {
			dump = ep.Trace()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, dump)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace: retained=%d total=%d dropped=%d\n",
			len(dump.Events), dump.Total, dump.Dropped)
		for _, e := range dump.Events {
			fmt.Fprintf(w, "%12d ns  %-26s a=%d b=%d\n", e.NowNs, e.Kind.String(), e.A, e.B)
		}
	}))
	render := func(path string, fn func(w io.Writer, format string) error) {
		mux.HandleFunc(path, readOnly(func(w http.ResponseWriter, r *http.Request) {
			if fn == nil {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintf(w, "%s: not enabled for this run\n", path)
				return
			}
			format := ""
			if r.URL.Query().Get("format") == "json" {
				format = "json"
				w.Header().Set("Content-Type", "application/json")
			} else {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			}
			if err := fn(w, format); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}))
	}
	render("/heapz", ep.Heapz)
	render("/pageheapz", ep.PageHeapz)
	return mux
}

// NewHandler is the legacy two-accessor constructor, kept for callers
// that only expose metrics and a bare event list. The trace endpoint it
// serves reports Total as the retained count (no drop accounting).
func NewHandler(snaps func() []Snapshot, trace func() []Event) http.Handler {
	ep := Endpoints{Snapshots: snaps}
	if trace != nil {
		ep.Trace = func() TraceDump {
			ev := trace()
			return TraceDump{Events: ev, Total: int64(len(ev))}
		}
	}
	return NewMux(ep)
}

// ServeEndpoints blocks serving the mux on addr; the CLIs call it after
// a run when -serve is set so the operator can curl the pages.
func ServeEndpoints(addr string, ep Endpoints) error {
	return http.ListenAndServe(addr, NewMux(ep))
}

// Serve is the legacy entry point matching NewHandler's shape.
func Serve(addr string, snaps func() []Snapshot, trace func() []Event) error {
	return http.ListenAndServe(addr, NewHandler(snaps, trace))
}
