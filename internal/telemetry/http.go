package telemetry

import (
	"fmt"
	"net/http"
)

// NewHandler serves the live observability endpoints:
//
//	/metricsz          Prometheus text (default), ?format=json, ?format=text (mallocz)
//	/tracez            recent events, plain text (default) or ?format=json
//
// snaps and trace are called per request, so the handler always reports
// the caller's latest state (the CLIs pass closures over the finished
// run; a long-lived embedder could pass live accessors). Either accessor
// may be nil, in which case its endpoint serves empty output.
func NewHandler(snaps func() []Snapshot, trace func() []Event) http.Handler {
	if snaps == nil {
		snaps = func() []Snapshot { return nil }
	}
	if trace == nil {
		trace = func() []Event { return nil }
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		ss := snaps()
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, jsonDoc{Snapshots: ss})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteMallocz(w, ss...)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = WritePrometheus(w, ss...)
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		events := trace()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, struct {
				Trace []Event `json:"trace"`
			}{events})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, e := range events {
			fmt.Fprintf(w, "%12d ns  %-26s a=%d b=%d\n", e.NowNs, e.Kind.String(), e.A, e.B)
		}
	})
	return mux
}

// Serve blocks serving the handler on addr; the CLIs call it after a
// run when -serve is set so the operator can curl /metricsz + /tracez.
func Serve(addr string, snaps func() []Snapshot, trace func() []Event) error {
	return http.ListenAndServe(addr, NewHandler(snaps, trace))
}
