package telemetry

import (
	"fmt"
	"io"
	"net/http"
)

// Endpoints bundles the accessors behind the live observability pages.
// Every field is optional; a nil accessor serves empty output for its
// endpoint. Heapz and PageHeapz are render callbacks (rather than data
// accessors) so this package never imports the profiler or the
// allocator core — the caller closes over them and writes directly.
type Endpoints struct {
	// Snapshots backs /metricsz.
	Snapshots func() []Snapshot
	// Trace backs /tracez; the dump carries the ring's loss counters.
	Trace func() TraceDump
	// Heapz backs /heapz. format is "" (text) or "json".
	Heapz func(w io.Writer, format string) error
	// PageHeapz backs /pageheapz. format is "" (text) or "json".
	PageHeapz func(w io.Writer, format string) error
}

// NewMux serves the live observability endpoints:
//
//	/metricsz          Prometheus text (default), ?format=json, ?format=text (mallocz)
//	/tracez            recent events + drop counters, plain text or ?format=json
//	/heapz             sampled heap profile views, pprof-style text or ?format=json
//	/pageheapz         hugepage occupancy + fragmentation, text or ?format=json
//
// Accessors are called per request, so the handler always reports the
// caller's latest state (the CLIs pass closures over the finished run;
// a long-lived embedder could pass live accessors).
func NewMux(ep Endpoints) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metricsz", func(w http.ResponseWriter, r *http.Request) {
		var ss []Snapshot
		if ep.Snapshots != nil {
			ss = ep.Snapshots()
		}
		switch r.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, jsonDoc{Snapshots: ss})
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = WriteMallocz(w, ss...)
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = WritePrometheus(w, ss...)
		}
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		var dump TraceDump
		if ep.Trace != nil {
			dump = ep.Trace()
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = WriteJSON(w, dump)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "trace: retained=%d total=%d dropped=%d\n",
			len(dump.Events), dump.Total, dump.Dropped)
		for _, e := range dump.Events {
			fmt.Fprintf(w, "%12d ns  %-26s a=%d b=%d\n", e.NowNs, e.Kind.String(), e.A, e.B)
		}
	})
	render := func(path string, fn func(w io.Writer, format string) error) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			if fn == nil {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintf(w, "%s: not enabled for this run\n", path)
				return
			}
			format := ""
			if r.URL.Query().Get("format") == "json" {
				format = "json"
				w.Header().Set("Content-Type", "application/json")
			} else {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			}
			if err := fn(w, format); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	render("/heapz", ep.Heapz)
	render("/pageheapz", ep.PageHeapz)
	return mux
}

// NewHandler is the legacy two-accessor constructor, kept for callers
// that only expose metrics and a bare event list. The trace endpoint it
// serves reports Total as the retained count (no drop accounting).
func NewHandler(snaps func() []Snapshot, trace func() []Event) http.Handler {
	ep := Endpoints{Snapshots: snaps}
	if trace != nil {
		ep.Trace = func() TraceDump {
			ev := trace()
			return TraceDump{Events: ev, Total: int64(len(ev))}
		}
	}
	return NewMux(ep)
}

// ServeEndpoints blocks serving the mux on addr; the CLIs call it after
// a run when -serve is set so the operator can curl the pages.
func ServeEndpoints(addr string, ep Endpoints) error {
	return http.ListenAndServe(addr, NewMux(ep))
}

// Serve is the legacy entry point matching NewHandler's shape.
func Serve(addr string, snaps func() []Snapshot, trace func() []Event) error {
	return http.ListenAndServe(addr, NewHandler(snaps, trace))
}
