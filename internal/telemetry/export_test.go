package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildSnapshots makes a deterministic control/experiment pair.
func buildSnapshots() []Snapshot {
	mk := func(label string, scale int64) Snapshot {
		r := NewRegistry()
		r.Counter("percpu_miss_total").Add(10 * scale)
		r.Counter("transfer_hit_total").Add(100 * scale)
		r.Gauge("heap_bytes").Set(1 << 20)
		h := r.Histogram("alloc_size_bytes", 3, 20)
		for i := int64(0); i < 10*scale; i++ {
			h.Observe(64)
		}
		h.Observe(4096)
		return r.Snapshot(label, 250_000_000)
	}
	return []Snapshot{mk("control", 1), mk("experiment", 2)}
}

func TestWritePrometheusShape(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, buildSnapshots()...); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE wsmalloc_percpu_miss_total counter",
		`wsmalloc_percpu_miss_total{arm="control"} 10`,
		`wsmalloc_percpu_miss_total{arm="experiment"} 20`,
		"# TYPE wsmalloc_heap_bytes gauge",
		"# TYPE wsmalloc_alloc_size_bytes histogram",
		`wsmalloc_alloc_size_bytes_bucket{arm="control",le="128"} 10`,
		`wsmalloc_alloc_size_bytes_bucket{arm="control",le="+Inf"} 11`,
		`wsmalloc_alloc_size_bytes_count{arm="control"} 11`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusUnlabeled(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Add(1)
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot("", 0)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "wsmalloc_x_total 1\n") {
		t.Fatalf("unlabeled output wrong:\n%s", b.String())
	}
}

func TestWriteMalloczShape(t *testing.T) {
	var b strings.Builder
	if err := WriteMallocz(&b, buildSnapshots()...); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"MALLOC telemetry (control) @ 250000000 virtual ns",
		"MALLOC telemetry (experiment)",
		"heap_bytes",
		"MALLOC events",
		"percpu_miss_total",
		"MALLOC histogram alloc_size_bytes:",
		"p50=", "p95=", "p99=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("mallocz output missing %q:\n%s", want, out)
		}
	}
}

func TestExportsAreByteStable(t *testing.T) {
	render := func() (string, string, string) {
		snaps := buildSnapshots()
		var p, m, j strings.Builder
		if err := WritePrometheus(&p, snaps...); err != nil {
			t.Fatal(err)
		}
		if err := WriteMallocz(&m, snaps...); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&j, snaps); err != nil {
			t.Fatal(err)
		}
		return p.String(), m.String(), j.String()
	}
	p1, m1, j1 := render()
	p2, m2, j2 := render()
	if p1 != p2 || m1 != m2 || j1 != j2 {
		t.Fatal("exports are not byte-stable across renders")
	}
}

func TestWriteFiles(t *testing.T) {
	base := filepath.Join(t.TempDir(), "metrics")
	trace := TraceDump{
		Events:  []Event{{NowNs: 1, Kind: EvMmap, KindS: EvMmap.String(), A: 4}},
		Total:   7,
		Dropped: 6,
	}
	paths, err := WriteFiles(base, buildSnapshots(), nil, trace)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(base + ".json")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Snapshots []Snapshot `json:"snapshots"`
		Trace     []Event    `json:"trace"`
		Total     int64      `json:"trace_total"`
		Dropped   int64      `json:"trace_dropped"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Snapshots) != 2 || len(doc.Trace) != 1 || doc.Trace[0].KindS != "os_mmap" {
		t.Fatalf("json doc = %+v", doc)
	}
	if doc.Total != 7 || doc.Dropped != 6 {
		t.Fatalf("trace loss counters = %d/%d", doc.Total, doc.Dropped)
	}
	for _, p := range paths {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("export %s missing or empty", p)
		}
	}
}

func TestHTTPHandler(t *testing.T) {
	snaps := buildSnapshots()
	trace := []Event{{NowNs: 5, Kind: EvSubrelease, KindS: EvSubrelease.String(), A: 1, B: 8}}
	h := NewHandler(func() []Snapshot { return snaps }, func() []Event { return trace })
	srv := httptest.NewServer(h)
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if out := get("/metricsz"); !strings.Contains(out, "# TYPE wsmalloc_percpu_miss_total counter") {
		t.Fatalf("/metricsz default not prometheus:\n%s", out)
	}
	if out := get("/metricsz?format=json"); !strings.Contains(out, `"snapshots"`) {
		t.Fatalf("/metricsz json wrong:\n%s", out)
	}
	if out := get("/metricsz?format=text"); !strings.Contains(out, "MALLOC telemetry") {
		t.Fatalf("/metricsz text wrong:\n%s", out)
	}
	if out := get("/tracez"); !strings.Contains(out, "subrelease") {
		t.Fatalf("/tracez wrong:\n%s", out)
	}
	if out := get("/tracez?format=json"); !strings.Contains(out, `"kind": "subrelease"`) {
		t.Fatalf("/tracez json wrong:\n%s", out)
	}
}

func TestEndpointsMuxObservabilityPages(t *testing.T) {
	snaps := buildSnapshots()
	ep := Endpoints{
		Snapshots: func() []Snapshot { return snaps },
		Trace: func() TraceDump {
			return TraceDump{
				Events: []Event{{NowNs: 5, Kind: EvSubrelease, KindS: EvSubrelease.String(), A: 1, B: 8}},
				Total:  9, Dropped: 8,
			}
		},
		Heapz: func(w io.Writer, format string) error {
			if format == "json" {
				_, err := io.WriteString(w, `{"profiles":[]}`)
				return err
			}
			_, err := io.WriteString(w, "heap profile: stub\n")
			return err
		},
		// PageHeapz nil: the page must degrade gracefully, not 404.
	}
	srv := httptest.NewServer(NewMux(ep))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}
	if out := get("/heapz"); !strings.Contains(out, "heap profile: stub") {
		t.Fatalf("/heapz wrong:\n%s", out)
	}
	if out := get("/heapz?format=json"); !strings.Contains(out, `"profiles"`) {
		t.Fatalf("/heapz json wrong:\n%s", out)
	}
	if out := get("/pageheapz"); !strings.Contains(out, "not enabled") {
		t.Fatalf("/pageheapz without renderer should explain itself:\n%s", out)
	}
	// The dropped-event counter surfaces in both /tracez forms.
	if out := get("/tracez"); !strings.Contains(out, "dropped=8") || !strings.Contains(out, "total=9") {
		t.Fatalf("/tracez missing loss counters:\n%s", out)
	}
	if out := get("/tracez?format=json"); !strings.Contains(out, `"trace_dropped": 8`) {
		t.Fatalf("/tracez json missing trace_dropped:\n%s", out)
	}
}
