package telemetry

// Config selects what the pipeline records. The zero value disables
// telemetry entirely (NewSink returns nil and every tier call site
// reduces to one nil check).
type Config struct {
	// Enabled turns the pipeline on.
	Enabled bool
	// TraceCapacity bounds the event ring buffer; 0 keeps the per-kind
	// counters but records no trace. Fleet runs use 0 so hundreds of
	// machines don't each retain an event log.
	TraceCapacity int
	// SampleEveryNs snapshots the registry at this virtual-clock
	// cadence; 0 disables time-series sampling.
	SampleEveryNs int64
}

// DefaultConfig enables telemetry with a modest trace ring and no
// time-series sampling, the single-machine CLI default.
func DefaultConfig() Config {
	return Config{Enabled: true, TraceCapacity: 4096}
}

// Sink is the nil-safe recording facade handed to every tier. Tiers
// call Event/EventAdd on structural transitions; a nil *Sink makes each
// call a single branch, which is what keeps the disabled path inside
// the <2% BenchmarkFleetAB budget.
//
// The sink owns the machine's registry, optional tracer, and optional
// sampler. It reads virtual time through the now closure installed by
// core (tiers themselves never see the clock).
type Sink struct {
	reg     *Registry
	tracer  *Tracer
	sampler *Sampler
	now     func() int64
	// gaugeFill refreshes gauges from allocator stats immediately
	// before a snapshot; installed by core.
	gaugeFill func(*Registry)
	// counters holds the pre-registered per-kind counter handles so
	// Event never takes the registry lock.
	counters [numEventKinds]*CounterHandle
}

// NewSink builds a sink for one machine, or nil when cfg.Enabled is
// false. now supplies the virtual clock for trace timestamps and
// sampling.
func NewSink(cfg Config, now func() int64) *Sink {
	if !cfg.Enabled {
		return nil
	}
	if now == nil {
		now = func() int64 { return 0 }
	}
	s := &Sink{
		reg:    NewRegistry(),
		tracer: NewTracer(cfg.TraceCapacity),
		now:    now,
	}
	for k := EventKind(0); k < numEventKinds; k++ {
		s.counters[k] = s.reg.Counter(k.MetricName()).Handle()
	}
	if cfg.SampleEveryNs > 0 {
		s.sampler = newSampler(cfg.SampleEveryNs, s.snapshotAt)
	}
	return s
}

// Event records one occurrence of kind with operands a, b: the kind's
// counter increments by 1 and, when tracing is on, an event enters the
// ring.
func (s *Sink) Event(kind EventKind, a, b int64) {
	if s == nil {
		return
	}
	s.counters[kind].Inc()
	if s.tracer != nil {
		s.tracer.Record(Event{NowNs: s.now(), Kind: kind, A: a, B: b})
	}
}

// EventAdd is Event for batched transitions: the kind's counter grows
// by n (e.g. objects plundered) while the trace still records a single
// event.
func (s *Sink) EventAdd(kind EventKind, n, a, b int64) {
	if s == nil {
		return
	}
	s.counters[kind].Add(n)
	if s.tracer != nil {
		s.tracer.Record(Event{NowNs: s.now(), Kind: kind, A: a, B: b})
	}
}

// Registry returns the sink's registry (nil for a nil sink).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Tracer returns the sink's tracer (nil for a nil sink or when tracing
// is off).
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// SetGaugeFill installs the callback that refreshes gauges from
// allocator stats before each snapshot.
func (s *Sink) SetGaugeFill(fn func(*Registry)) {
	if s == nil {
		return
	}
	s.gaugeFill = fn
}

// FlushGauges refreshes the gauges now; the fleet calls this once per
// machine at end-of-run before folding registries.
func (s *Sink) FlushGauges() {
	if s == nil || s.gaugeFill == nil {
		return
	}
	s.gaugeFill(s.reg)
}

// snapshotAt refreshes gauges and snapshots the registry at virtual
// time nowNs.
func (s *Sink) snapshotAt(nowNs int64) Snapshot {
	s.FlushGauges()
	return s.reg.Snapshot("", nowNs)
}

// Snapshot refreshes gauges and renders the registry, stamped with
// label and the given virtual time. A nil sink returns a zero Snapshot.
func (s *Sink) Snapshot(label string, nowNs int64) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	s.FlushGauges()
	return s.reg.Snapshot(label, nowNs)
}

// MaybeSample lets the time-series sampler fire if the virtual clock
// crossed its next deadline; core calls this from Allocator.Tick.
func (s *Sink) MaybeSample(nowNs int64) {
	if s == nil || s.sampler == nil {
		return
	}
	s.sampler.maybeSample(nowNs)
}

// Samples returns the time series collected so far (nil when sampling
// is off).
func (s *Sink) Samples() []Snapshot {
	if s == nil || s.sampler == nil {
		return nil
	}
	return s.sampler.samplesCopy()
}
