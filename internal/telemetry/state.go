package telemetry

import (
	"encoding/json"
	"sort"

	"wsmalloc/internal/snapshot"
	"wsmalloc/internal/stats"
)

// EncodeState serializes the registry: counter sums, gauge values, and
// histogram buckets, each sorted by name. Shard structure is not
// preserved — a counter's restored value lands on shard 0, which is
// exact because Value always folds the shards.
func (r *Registry) EncodeState(e *snapshot.Encoder) {
	e.Section("telemetry.registry")
	r.mu.RLock()
	defer r.mu.RUnlock()

	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Len(len(names))
	for _, n := range names {
		e.String(n)
		e.I64(r.counters[n].Value())
	}

	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Len(len(names))
	for _, n := range names {
		e.String(n)
		e.I64(r.gauges[n].Value())
	}

	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	e.Len(len(names))
	for _, n := range names {
		e.String(n)
		h := r.histograms[n]
		h.mu.Lock()
		h.h.EncodeState(e)
		h.mu.Unlock()
	}
}

// DecodeState restores metrics saved by EncodeState. Metrics are
// get-or-created by name, so pre-registered metrics (the per-kind
// event counters, core's histograms) are overwritten in place and
// metrics unknown to this registry — including histograms, whose state
// is self-describing — are recreated faithfully. Histogram recreation
// is what lets a bare carry registry restore the merged histograms of
// a machine's pre-checkpoint process deaths.
func (r *Registry) DecodeState(d *snapshot.Decoder) {
	d.Section("telemetry.registry")

	n := d.Len(4 + 8)
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.I64()
		if d.Err() != nil {
			return
		}
		c := r.Counter(name)
		for j := range c.cells {
			c.cells[j].v = 0
		}
		c.cells[0].v = v
	}

	n = d.Len(4 + 8)
	for i := 0; i < n; i++ {
		name := d.String()
		v := d.I64()
		if d.Err() != nil {
			return
		}
		r.Gauge(name).Set(v)
	}

	n = d.Len(8 * 4)
	for i := 0; i < n; i++ {
		name := d.String()
		if d.Err() != nil {
			return
		}
		r.mu.RLock()
		h := r.histograms[name]
		r.mu.RUnlock()
		if h == nil {
			nh := stats.DecodeLogHistogram(d)
			if d.Err() != nil {
				return
			}
			r.mu.Lock()
			if r.histograms[name] == nil {
				r.histograms[name] = &Histogram{name: name, h: nh}
			}
			r.mu.Unlock()
			continue
		}
		h.mu.Lock()
		h.h.DecodeState(d)
		h.mu.Unlock()
		if d.Err() != nil {
			return
		}
	}
}

// EncodeState serializes the ring buffer verbatim (raw slot order plus
// the cursor), so a restored tracer overwrites exactly the slots the
// uninterrupted run would have.
func (t *Tracer) EncodeState(e *snapshot.Encoder) {
	e.Section("telemetry.tracer")
	e.Bool(t != nil)
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e.Int(cap(t.buf))
	e.Int(t.next)
	e.Bool(t.wrapped)
	e.I64(t.total)
	e.Len(len(t.buf))
	for _, ev := range t.buf {
		e.I64(ev.NowNs)
		e.U8(uint8(ev.Kind))
		e.I64(ev.A)
		e.I64(ev.B)
	}
}

// DecodeState restores tracer state saved by EncodeState; it returns
// the restored tracer because a snapshot from a tracing-disabled sink
// restores to nil.
func (t *Tracer) DecodeState(d *snapshot.Decoder) *Tracer {
	d.Section("telemetry.tracer")
	if !d.Bool() {
		return nil
	}
	capacity := d.Int()
	next := d.Int()
	wrapped := d.Bool()
	total := d.I64()
	n := d.Len(8 + 1 + 8 + 8)
	if d.Err() != nil {
		return t
	}
	if capacity <= 0 || n > capacity || next < 0 || next >= capacity {
		d.Fail("telemetry: tracer ring geometry cap=%d len=%d next=%d", capacity, n, next)
		return t
	}
	if t == nil {
		t = NewTracer(capacity)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = make([]Event, n, capacity)
	for i := range t.buf {
		ev := Event{NowNs: d.I64(), Kind: EventKind(d.U8()), A: d.I64(), B: d.I64()}
		ev.KindS = ev.Kind.String()
		t.buf[i] = ev
	}
	t.next = next
	t.wrapped = wrapped
	t.total = total
	return t
}

// EncodeState serializes the sink's mutable state: the registry, the
// trace ring, and the time-series sampler's deadline and collected
// samples (as JSON — the sample series is exporter-shaped data, and
// json round-trips it exactly).
func (s *Sink) EncodeState(e *snapshot.Encoder) {
	e.Section("telemetry.sink")
	e.Bool(s != nil)
	if s == nil {
		return
	}
	s.reg.EncodeState(e)
	s.tracer.EncodeState(e)
	e.Bool(s.sampler != nil)
	if s.sampler != nil {
		s.sampler.mu.Lock()
		e.I64(s.sampler.nextAt)
		blob, err := json.Marshal(s.sampler.samples)
		s.sampler.mu.Unlock()
		if err != nil {
			panic("telemetry: marshaling sampler series: " + err.Error())
		}
		e.Bytes(blob)
	}
}

// DecodeState restores sink state saved by EncodeState into a sink
// freshly built by NewSink with the same Config, failing the decoder
// when the snapshot's telemetry shape (enabled, sampling) disagrees
// with the constructed sink.
func (s *Sink) DecodeState(d *snapshot.Decoder) {
	d.Section("telemetry.sink")
	had := d.Bool()
	if d.Err() != nil {
		return
	}
	if had != (s != nil) {
		d.Fail("telemetry: snapshot sink enabled=%v, constructed sink enabled=%v", had, s != nil)
		return
	}
	if s == nil {
		return
	}
	s.reg.DecodeState(d)
	s.tracer = s.tracer.DecodeState(d)
	hadSampler := d.Bool()
	if d.Err() != nil {
		return
	}
	if hadSampler != (s.sampler != nil) {
		d.Fail("telemetry: snapshot sampling=%v, constructed sampling=%v", hadSampler, s.sampler != nil)
		return
	}
	if s.sampler == nil {
		return
	}
	nextAt := d.I64()
	blob := d.Bytes()
	if d.Err() != nil {
		return
	}
	var samples []Snapshot
	if err := json.Unmarshal(blob, &samples); err != nil {
		d.Fail("telemetry: unmarshaling sampler series: %v", err)
		return
	}
	s.sampler.mu.Lock()
	s.sampler.nextAt = nextAt
	s.sampler.samples = samples
	s.sampler.mu.Unlock()
}
