// Package telemetry is the fleet observability pipeline: a central
// metrics registry (counters, gauges, log-histograms), a bounded
// ring-buffer tracer for structural allocator events, a simulated-clock
// time-series sampler, and exporters (Prometheus text, JSON, and a
// human-readable mallocz dump modeled on TCMalloc's statsz).
//
// The paper's entire characterization (§2) rests on telemetry like this:
// per-tier hit/miss ratios, malloc cycle breakdowns, fragmentation and
// hugepage-coverage time series. Tiers report through a nil-safe *Sink so
// the disabled path costs a single branch, and every numeric datum is
// either an int64 or an integer-valued float so that merging per-machine
// registries is exact and order-independent — the property that lets
// fleet aggregates fold through the enrolment-order reducer and stay
// bit-identical at any -j (see DESIGN.md, "Telemetry").
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"wsmalloc/internal/stats"
)

// counterShards is how many cache-line-padded cells a Counter stripes
// over. Handles bind round-robin to a shard, so up to this many
// concurrent writers proceed without false sharing.
const counterShards = 8

// counterCell is one shard of a Counter, padded to a 64-byte cache line.
type counterCell struct {
	v int64
	_ [7]int64
}

// Counter is a monotonically-increasing metric. Add is an uncontended
// atomic on the caller's shard; Value folds the shards. Use Handle to get
// a cheap per-worker handle that avoids false sharing under parallel
// fleet runs.
type Counter struct {
	name  string
	cells [counterShards]counterCell
	next  atomic.Uint32
}

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by d (on shard 0 — fine for the
// single-threaded allocator; parallel writers should use Handle).
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.cells[0].v, d) }

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the summed counter value.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += atomic.LoadInt64(&c.cells[i].v)
	}
	return sum
}

// Handle binds a cheap write handle to one of the counter's shards,
// round-robin, so concurrent writers spread across cache lines.
func (c *Counter) Handle() *CounterHandle {
	i := c.next.Add(1) - 1
	return &CounterHandle{p: &c.cells[i%counterShards].v}
}

// CounterHandle is a shard-bound writer for one Counter.
type CounterHandle struct{ p *int64 }

// Add increments the handle's shard by d.
func (h *CounterHandle) Add(d int64) { atomic.AddInt64(h.p, d) }

// Inc increments the handle's shard by 1.
func (h *CounterHandle) Inc() { h.Add(1) }

// Gauge is a point-in-time int64 metric (bytes live, coverage in ppm,
// ...). Gauges are refreshed from allocator stats at snapshot time and
// merge across machines by summation.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d to the gauge.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a mutex-protected log2 histogram metric wrapping
// stats.LogHistogram. Sinks observe with unit weight, so bucket counts
// stay integer-valued floats and merging is exact.
type Histogram struct {
	name string
	mu   sync.Mutex
	h    *stats.LogHistogram
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// Observe records v with weight 1.
func (h *Histogram) Observe(v float64) { h.ObserveWeighted(v, 1) }

// ObserveWeighted records v with weight w.
func (h *Histogram) ObserveWeighted(v, w float64) {
	h.mu.Lock()
	h.h.AddWeighted(v, w)
	h.mu.Unlock()
}

// MergeLog folds a caller-owned raw histogram into h under its lock.
// This is the buffered-observation flush path: a single-threaded
// producer (the simulated allocator) accumulates per-operation
// observations into an unsynchronized stats.LogHistogram and folds
// them in bulk at snapshot boundaries, keeping the mutex off the
// per-operation hot path. The caller must not mutate src concurrently.
func (h *Histogram) MergeLog(src *stats.LogHistogram) {
	h.mu.Lock()
	h.h.Merge(src)
	h.mu.Unlock()
}

// merge folds other's buckets into h.
func (h *Histogram) merge(other *Histogram) {
	other.mu.Lock()
	src := other.h
	h.mu.Lock()
	h.h.Merge(src)
	h.mu.Unlock()
	other.mu.Unlock()
}

// snapshotValue renders the histogram under its lock.
func (h *Histogram) snapshotValue() HistogramValue {
	h.mu.Lock()
	defer h.mu.Unlock()
	return SnapshotLogHistogram(h.name, h.h)
}

// Registry holds every metric by name. Get-or-create accessors are safe
// for concurrent use; names are sorted at snapshot time so exports are
// deterministic regardless of registration order.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the log2 histogram registered under name, creating
// it over exponents [minExp, maxExp] on first use. The range is fixed at
// creation; later callers get the existing histogram regardless of the
// range they pass.
func (r *Registry) Histogram(name string, minExp, maxExp int) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{name: name, h: stats.NewLogHistogram(minExp, maxExp)}
		r.histograms[name] = h
	}
	return h
}

// Merge folds other into r: counters and gauges add, histograms merge
// bucket-wise. Because every value is an integer (or an integer-valued
// float), merging is commutative and associative, so the fold result
// depends only on which registries were merged — not on order. The fleet
// reducer still merges in enrolment order to honour the PR 2 determinism
// contract.
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	for name, c := range other.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, g := range other.gauges {
		r.Gauge(name).Add(g.Value())
	}
	for name, h := range other.histograms {
		minExp, maxExp := h.h.Range()
		r.Histogram(name, minExp, maxExp).merge(h)
	}
}

// MergeCumulative folds other's counters and histograms into r, leaving
// gauges alone. This is the carry-over merge for a restarted machine:
// its cumulative event history survives the process that died, but its
// point-in-time gauges (heap bytes, live objects, ...) die with the
// heap, so folding them forward would double-count state that no longer
// exists.
func (r *Registry) MergeCumulative(other *Registry) {
	if other == nil {
		return
	}
	other.mu.RLock()
	defer other.mu.RUnlock()
	for name, c := range other.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, h := range other.histograms {
		minExp, maxExp := h.h.Range()
		r.Histogram(name, minExp, maxExp).merge(h)
	}
}

// Snapshot renders every metric, sorted by name, stamped with a label
// (e.g. "control"/"experiment") and a virtual-clock timestamp. Sorting
// makes the export byte-stable regardless of map iteration or
// registration order.
func (r *Registry) Snapshot(label string, nowNs int64) Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{Label: label, NowNs: nowNs}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for _, h := range r.histograms {
		s.Histograms = append(s.Histograms, h.snapshotValue())
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// MetricValue is one exported counter or gauge.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one occupied histogram bucket: [Lo, Hi) holding Count
// observations.
type BucketValue struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count float64 `json:"count"`
}

// HistogramValue is one exported histogram: occupied buckets plus
// interpolated p50/p95/p99, the quantile lines the mallocz dump prints.
type HistogramValue struct {
	Name    string        `json:"name"`
	Total   float64       `json:"total"`
	Buckets []BucketValue `json:"buckets,omitempty"`
	P50     float64       `json:"p50"`
	P95     float64       `json:"p95"`
	P99     float64       `json:"p99"`
}

// Snapshot is one point-in-time rendering of a registry, sorted by
// metric name.
type Snapshot struct {
	Label      string           `json:"label,omitempty"`
	Design     string           `json:"design,omitempty"`
	NowNs      int64            `json:"now_ns"`
	Counters   []MetricValue    `json:"counters"`
	Gauges     []MetricValue    `json:"gauges"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// SnapshotLogHistogram renders any stats.LogHistogram in exporter form:
// occupied buckets plus interpolated p50/p95/p99. It is also how
// internal/profiler exports its size/lifetime histograms as JSON.
func SnapshotLogHistogram(name string, h *stats.LogHistogram) HistogramValue {
	out := HistogramValue{
		Name:  name,
		Total: h.Total(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for _, b := range h.Buckets() {
		if b.Weight != 0 {
			out.Buckets = append(out.Buckets, BucketValue{Lo: b.Lo, Hi: b.Lo * 2, Count: b.Weight})
		}
	}
	return out
}
