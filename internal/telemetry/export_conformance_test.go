package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// conformanceSnapshots builds two labeled snapshots covering every
// exported family shape: all auto-registered event counters, the full
// gauge surface the allocator fills, a histogram, an uncurated name
// (fallback HELP), and label values that need escaping.
func conformanceSnapshots() []Snapshot {
	build := func(label, design string, scale int64) Snapshot {
		r := NewRegistry()
		for k := EventKind(0); k < numEventKinds; k++ {
			r.Counter(k.MetricName()).Add(scale * int64(k+1))
		}
		r.Counter("uncurated_thing_total").Add(scale)
		for _, g := range []string{
			"heap_bytes", "live_objects", "hugepage_coverage_ppm",
			"fragmentation_ratio_ppm", "mallocs", "frees", "oom_errors",
			"frag_external_bytes", "time_cfl_ns", "uncurated_gauge",
		} {
			r.Gauge(g).Set(scale * 7)
		}
		h := r.Histogram("alloc_size_bytes", 3, 20)
		for i := 0; i < 50; i++ {
			h.Observe(float64(uint64(8) << (i % 10)))
		}
		s := r.Snapshot(label, 12345)
		s.Design = design
		return s
	}
	return []Snapshot{
		build("control", `percpu=fixed,tc="legacy"`, 3),
		build(`exp\riment"quoted`+"\n", `design\with"everything`+"\n", 5),
	}
}

var (
	promNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePromLine splits a sample line into name, label pairs, and value,
// validating escape sequences in label values.
func parsePromLine(t *testing.T, line string) (name string, labels map[string]string, value float64) {
	t.Helper()
	labels = map[string]string{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("unparseable sample line %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || !strings.HasPrefix(rest[eq+1:], `"`) {
				t.Fatalf("bad label syntax in %q", line)
			}
			key := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' {
					if i+1 >= len(rest) {
						t.Fatalf("dangling backslash in %q", line)
					}
					next := rest[i+1]
					switch next {
					case '\\', '"':
						val.WriteByte(next)
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("invalid escape \\%c in %q", next, line)
					}
					i++
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				if c == '\n' {
					t.Fatalf("raw newline inside label value in %q", line)
				}
				val.WriteByte(c)
			}
			if !closed {
				t.Fatalf("unterminated label value in %q", line)
			}
			if !promLabelRe.MatchString(key) {
				t.Errorf("invalid label name %q in %q", key, line)
			}
			labels[key] = val.String()
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = strings.TrimPrefix(rest, "}")
	}
	rest = strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("unparseable value %q in %q", rest, line)
	}
	return name, labels, v
}

// TestPrometheusConformance is a lint pass over every family the text
// exporter emits: HELP/TYPE presence and order, name syntax, label
// escaping, and cumulative histogram buckets.
func TestPrometheusConformance(t *testing.T) {
	snaps := conformanceSnapshots()
	var sb strings.Builder
	if err := WritePrometheus(&sb, snaps...); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	type family struct {
		help, typ  string
		helpBefore bool
		samples    int
	}
	families := map[string]*family{}
	current := "" // family owning subsequent sample lines
	baseOf := func(sample string) string {
		for _, suf := range []string{"_bucket", "_count", "_sum"} {
			base := strings.TrimSuffix(sample, suf)
			if base != sample {
				if f, ok := families[base]; ok && f.typ == "histogram" {
					return base
				}
			}
		}
		return sample
	}

	type histKey struct{ name, arm string }
	histCum := map[histKey]float64{}
	histLastLe := map[histKey]float64{}
	histInf := map[histKey]float64{}
	histCount := map[histKey]float64{}

	for ln, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			name := parts[2]
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", ln+1, name)
			}
			if !strings.HasPrefix(name, metricPrefix) {
				t.Errorf("line %d: family %q missing %q prefix", ln+1, name, metricPrefix)
			}
			f := families[name]
			if f == nil {
				f = &family{}
				families[name] = f
			}
			switch parts[1] {
			case "HELP":
				if f.help != "" {
					t.Errorf("line %d: duplicate HELP for %q", ln+1, name)
				}
				if f.typ == "" {
					f.helpBefore = true
				}
				f.help = parts[3]
			case "TYPE":
				if f.typ != "" {
					t.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram":
				default:
					t.Errorf("line %d: invalid TYPE %q", ln+1, parts[3])
				}
				f.typ = parts[3]
				current = name
			}
			continue
		}

		name, labels, value := parsePromLine(t, line)
		base := baseOf(name)
		f := families[base]
		if f == nil || f.typ == "" {
			t.Fatalf("line %d: sample %q precedes its TYPE declaration", ln+1, name)
		}
		if base != current {
			t.Errorf("line %d: sample %q outside its family's block (current %q)", ln+1, name, current)
		}
		f.samples++
		for k, v := range labels {
			if k == "le" {
				continue
			}
			found := false
			for _, s := range snaps {
				if (k == "arm" && v == s.Label) || (k == "design" && v == s.Design) {
					found = true
				}
			}
			if !found {
				t.Errorf("line %d: label %s=%q does not round-trip to any snapshot identity", ln+1, k, v)
			}
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_bucket") {
			key := histKey{base, labels["arm"] + "\x00" + labels["design"]}
			le := labels["le"]
			var leV float64
			if le == "+Inf" {
				leV = math.Inf(1)
				histInf[key] = value
			} else {
				var err error
				leV, err = strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("line %d: unparseable le %q", ln+1, le)
				}
			}
			if last, ok := histLastLe[key]; ok && leV <= last {
				t.Errorf("line %d: le %q not increasing for %q", ln+1, le, base)
			}
			histLastLe[key] = leV
			if value < histCum[key] {
				t.Errorf("line %d: bucket counts not cumulative for %q", ln+1, base)
			}
			histCum[key] = value
		}
		if f.typ == "histogram" && strings.HasSuffix(name, "_count") {
			histCount[histKey{base, labels["arm"] + "\x00" + labels["design"]}] = value
		}
	}

	for name, f := range families {
		if f.help == "" {
			t.Errorf("family %q has no HELP line", name)
		}
		if f.typ == "" {
			t.Errorf("family %q has no TYPE line", name)
		}
		if !f.helpBefore {
			t.Errorf("family %q: HELP does not precede TYPE", name)
		}
		if f.samples == 0 {
			t.Errorf("family %q declared but has no samples", name)
		}
	}
	if len(families) < 20 {
		t.Errorf("conformance corpus too small: %d families", len(families))
	}
	for key, inf := range histInf {
		if c, ok := histCount[key]; !ok || c != inf {
			t.Errorf("histogram %q: +Inf bucket %g != count %g", key.name, inf, c)
		}
	}
}

// TestEscapeLabel pins the escaping rules on their own.
func TestEscapeLabel(t *testing.T) {
	cases := map[string]string{
		`plain`:        `plain`,
		`a\b`:          `a\\b`,
		`say "hi"`:     `say \"hi\"`,
		"line\nbreak":  `line\nbreak`,
		"\\\"\n":       `\\\"\n`,
		`design=a,b=c`: `design=a,b=c`,
	}
	for in, want := range cases {
		if got := escapeLabel(in); got != want {
			t.Errorf("escapeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSeriesRing covers the bounded ring: retention order, loss
// accounting, and codec round-trip.
func TestSeriesRing(t *testing.T) {
	r := NewSeriesRing(3)
	for i := 1; i <= 5; i++ {
		r.Append(Snapshot{NowNs: int64(i)})
	}
	got := r.Snapshots()
	if len(got) != 3 || got[0].NowNs != 3 || got[2].NowNs != 5 {
		t.Fatalf("ring retained %v, want ticks 3..5", got)
	}
	if r.Total() != 5 || r.Dropped() != 2 {
		t.Errorf("Total/Dropped = %d/%d, want 5/2", r.Total(), r.Dropped())
	}
	if last, ok := r.Latest(); !ok || last.NowNs != 5 {
		t.Errorf("Latest = %v, %v", last, ok)
	}
	if fmt.Sprint(r.Len()) != "3" {
		t.Errorf("Len = %d", r.Len())
	}
}

// The append that lands exactly at capacity is the wrap boundary: the
// ring flips to full with the cursor at slot 0, nothing is dropped
// yet, and the very next append must overwrite the oldest snapshot —
// an off-by-one here would either drop the capacity-th snapshot or
// overwrite the newest instead of the oldest.
func TestSeriesRingWrapAtExactCapacity(t *testing.T) {
	const capacity = 4
	r := NewSeriesRing(capacity)
	for i := 1; i <= capacity; i++ {
		r.Append(Snapshot{NowNs: int64(i)})
	}
	got := r.Snapshots()
	if len(got) != capacity {
		t.Fatalf("at exact capacity Len = %d, want %d", len(got), capacity)
	}
	for i, s := range got {
		if s.NowNs != int64(i+1) {
			t.Fatalf("at exact capacity snapshot %d has tick %d, want %d", i, s.NowNs, i+1)
		}
	}
	if r.Total() != capacity || r.Dropped() != 0 {
		t.Fatalf("at exact capacity Total/Dropped = %d/%d, want %d/0", r.Total(), r.Dropped(), capacity)
	}
	if last, ok := r.Latest(); !ok || last.NowNs != capacity {
		t.Fatalf("at exact capacity Latest = %v, %v", last, ok)
	}

	// The first post-capacity append must evict snapshot 1 and only it.
	r.Append(Snapshot{NowNs: capacity + 1})
	got = r.Snapshots()
	if len(got) != capacity || got[0].NowNs != 2 || got[capacity-1].NowNs != capacity+1 {
		t.Fatalf("after wrap Snapshots = %v, want ticks 2..%d", got, capacity+1)
	}
	if r.Total() != capacity+1 || r.Dropped() != 1 {
		t.Fatalf("after wrap Total/Dropped = %d/%d, want %d/1", r.Total(), r.Dropped(), capacity+1)
	}
	if last, ok := r.Latest(); !ok || last.NowNs != capacity+1 {
		t.Fatalf("after wrap Latest = %v, %v", last, ok)
	}
}
