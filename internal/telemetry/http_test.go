package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func testEndpoints(reg *Registry) Endpoints {
	tr := NewTracer(16)
	tr.Record(Event{NowNs: 1, Kind: EvPerCPUMiss, A: 1, B: 2})
	return Endpoints{
		Snapshots: func() []Snapshot { return []Snapshot{reg.Snapshot("live", 42)} },
		Trace:     func() TraceDump { return tr.Dump() },
		Heapz: func(w io.Writer, format string) error {
			_, err := io.WriteString(w, "heapz body\n")
			return err
		},
		PageHeapz: func(w io.Writer, format string) error {
			_, err := io.WriteString(w, "pageheapz body\n")
			return err
		},
		Status: func() any {
			return map[string]any{"service": "test", "tick": 7}
		},
	}
}

func TestMuxContentTypesAndBodies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("percpu_miss_total").Add(5)
	reg.Gauge("heap_bytes").Set(1 << 20)
	srv := httptest.NewServer(NewMux(testEndpoints(reg)))
	defer srv.Close()

	cases := []struct {
		path        string
		contentType string
		contains    string
	}{
		{"/metricsz", "text/plain; version=0.0.4; charset=utf-8", "# HELP wsmalloc_percpu_miss_total"},
		{"/metricsz?format=json", "application/json", `"counters"`},
		{"/metricsz?format=text", "text/plain; charset=utf-8", "MALLOC telemetry"},
		{"/tracez", "text/plain; charset=utf-8", "percpu_miss"},
		{"/tracez?format=json", "application/json", `"kind"`},
		{"/heapz", "text/plain; charset=utf-8", "heapz body"},
		{"/pageheapz", "text/plain; charset=utf-8", "pageheapz body"},
		{"/healthz", "text/plain; charset=utf-8", "ok"},
		{"/statusz", "application/json", `"service": "test"`},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + tc.path)
		if err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != tc.contentType {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, got, tc.contentType)
		}
		if !strings.Contains(string(body), tc.contains) {
			t.Errorf("%s: body missing %q:\n%s", tc.path, tc.contains, body)
		}
	}
}

func TestMuxMethodRejection(t *testing.T) {
	srv := httptest.NewServer(NewMux(testEndpoints(NewRegistry())))
	defer srv.Close()
	for _, path := range []string{"/metricsz", "/tracez", "/heapz", "/pageheapz", "/healthz", "/statusz"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req, _ := http.NewRequest(method, srv.URL+path, strings.NewReader("x"))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Errorf("%s %s: status %d, want 405", method, path, resp.StatusCode)
			}
			if got := resp.Header.Get("Allow"); got != "GET, HEAD" {
				t.Errorf("%s %s: Allow %q", method, path, got)
			}
		}
		// HEAD must still be accepted.
		resp, err := http.Head(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("HEAD %s: status %d", path, resp.StatusCode)
		}
	}
}

func TestHealthzUnhealthy(t *testing.T) {
	ep := testEndpoints(NewRegistry())
	ep.Health = func() error { return io.ErrClosedPipe }
	srv := httptest.NewServer(NewMux(ep))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "unhealthy") {
		t.Errorf("body %q", body)
	}
}

// TestConcurrentScrapeDuringRun hammers every page while writers mutate
// the live registry and tracer — the scrape-during-tick scenario the
// daemon serves. Run under -race (verify.sh does) this pins that the
// handlers never read unsynchronized state.
func TestConcurrentScrapeDuringRun(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64)
	ep := testEndpoints(reg)
	ep.Trace = func() TraceDump { return tr.Dump() }
	srv := httptest.NewServer(NewMux(ep))
	defer srv.Close()

	stop := make(chan struct{})
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			c := reg.Counter("percpu_miss_total").Handle()
			g := reg.Gauge("heap_bytes")
			h := reg.Histogram("alloc_size_bytes", 3, 20)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i))
				h.Observe(float64(int64(8) << (i % 8)))
				tr.Record(Event{NowNs: int64(i), Kind: EvPerCPUMiss})
			}
		}(w)
	}

	var readers sync.WaitGroup
	for _, path := range []string{"/metricsz", "/metricsz?format=json", "/tracez", "/healthz", "/statusz"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Errorf("%s: %v", path, err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: status %d", path, resp.StatusCode)
					return
				}
			}
		}(path)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}
