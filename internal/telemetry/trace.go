package telemetry

import (
	"fmt"
	"sync"
)

// EventKind identifies a structural allocator event. The taxonomy covers
// the cross-tier flows the paper's characterization reasons about:
// per-CPU misses and capacity steals (§3), transfer-cache hits, legacy
// fallbacks and plunders (§4), central-free-list span list moves (§5),
// filler pack/unpack and subrelease (§6), and OS mapping traffic.
type EventKind uint8

const (
	// EvPerCPUMiss: a per-CPU cache alloc underflow or free overflow
	// fell through to the transfer cache. A = vcpu, B = size class.
	EvPerCPUMiss EventKind = iota
	// EvPerCPUSteal: the resizer stole capacity from a victim vcpu.
	// A = victim vcpu, B = bytes moved.
	EvPerCPUSteal
	// EvPerCPUDecay: idle-class decay reclaimed cached objects.
	// A = vcpu, B = objects reclaimed.
	EvPerCPUDecay
	// EvTransferHit: transfer-cache hit in the requester's NUCA domain.
	// A = domain, B = size class.
	EvTransferHit
	// EvTransferLegacyFallback: NUCA miss satisfied by the legacy
	// shared array. A = domain, B = size class.
	EvTransferLegacyFallback
	// EvTransferMiss: transfer cache empty; batch fetched from the CFL.
	// A = domain, B = size class.
	EvTransferMiss
	// EvTransferPlunder: periodic plunder moved cold objects out.
	// A = objects moved, B = 0.
	EvTransferPlunder
	// EvTransferOverflow: a freed batch overflowed the transfer cache
	// and spilled to the CFL. A = size class, B = objects spilled.
	EvTransferOverflow
	// EvCFLSpanMove: a span moved between nonempty occupancy lists (or
	// parked full, B = -1). A = size class, B = destination list index.
	EvCFLSpanMove
	// EvCFLSpanCreate: the CFL grew a fresh span from the page heap.
	// A = size class, B = span id.
	EvCFLSpanCreate
	// EvCFLSpanRelease: a fully-freed span returned to the page heap.
	// A = size class, B = span id.
	EvCFLSpanRelease
	// EvFillerPack: the filler packed a small span into a hugepage.
	// A = hugepage index, B = pages.
	EvFillerPack
	// EvFillerUnpack: a span freed out of a filler hugepage.
	// A = hugepage index, B = pages.
	EvFillerUnpack
	// EvSubrelease: the filler broke a hugepage and subreleased tail
	// pages to the OS. A = hugepage index, B = pages returned.
	EvSubrelease
	// EvHeapPressure: commit pressure forced an emergency release.
	// A = bytes released, B = 0.
	EvHeapPressure
	// EvMmap: the simulated OS mapped a hugepage run. A = hugepages.
	EvMmap
	// EvMunmap: the simulated OS unmapped/released a hugepage. A = 1.
	EvMunmap

	numEventKinds
)

// eventKindNames maps kinds to metric-name stems; the per-kind counters
// are "<stem>_total".
var eventKindNames = [numEventKinds]string{
	EvPerCPUMiss:             "percpu_miss",
	EvPerCPUSteal:            "percpu_capacity_steal",
	EvPerCPUDecay:            "percpu_decay",
	EvTransferHit:            "transfer_hit",
	EvTransferLegacyFallback: "transfer_legacy_fallback",
	EvTransferMiss:           "transfer_miss",
	EvTransferPlunder:        "transfer_plunder",
	EvTransferOverflow:       "transfer_overflow",
	EvCFLSpanMove:            "cfl_span_move",
	EvCFLSpanCreate:          "cfl_span_create",
	EvCFLSpanRelease:         "cfl_span_release",
	EvFillerPack:             "filler_pack",
	EvFillerUnpack:           "filler_unpack",
	EvSubrelease:             "subrelease",
	EvHeapPressure:           "heap_pressure",
	EvMmap:                   "os_mmap",
	EvMunmap:                 "os_munmap",
}

// String returns the kind's metric-name stem.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return fmt.Sprintf("event_%d", int(k))
}

// MetricName returns the name of the kind's auto-registered counter.
func (k EventKind) MetricName() string { return k.String() + "_total" }

// Event is one traced allocator event. A and B are kind-specific
// operands (see the EventKind docs); NowNs is the machine's virtual
// clock at record time.
type Event struct {
	NowNs int64     `json:"now_ns"`
	Kind  EventKind `json:"-"`
	KindS string    `json:"kind"`
	A     int64     `json:"a"`
	B     int64     `json:"b"`
}

// Tracer is a bounded ring buffer of Events. When full, new events
// overwrite the oldest; Dropped counts the overwritten ones so exports
// can say how much history was lost.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	total   int64
}

// NewTracer returns a tracer retaining up to capacity events; capacity
// <= 0 returns nil (tracing disabled — Record on a nil tracer is safe).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		return nil
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Record appends e, overwriting the oldest event when full.
func (t *Tracer) Record(e Event) {
	if t == nil {
		return
	}
	e.KindS = e.Kind.String()
	t.mu.Lock()
	t.total++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % cap(t.buf)
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Total returns how many events were ever recorded.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events were overwritten by ring wrap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(len(t.buf))
}

// TraceDump is the exported view of a tracer: the retained events plus
// the loss accounting (Total ever recorded, Dropped overwritten by ring
// wrap), so consumers can tell how much history the ring discarded.
type TraceDump struct {
	Events  []Event `json:"trace,omitempty"`
	Total   int64   `json:"trace_total,omitempty"`
	Dropped int64   `json:"trace_dropped,omitempty"`
}

// Dump captures events and loss counters under one lock acquisition so
// Total/Dropped are consistent with the returned events. A nil tracer
// dumps the zero value.
func (t *Tracer) Dump() TraceDump {
	if t == nil {
		return TraceDump{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
	} else {
		out = append(out, t.buf...)
	}
	return TraceDump{Events: out, Total: t.total, Dropped: t.total - int64(len(t.buf))}
}
