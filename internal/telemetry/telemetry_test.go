package telemetry

import (
	"reflect"
	"testing"
)

func TestCounterShardsSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(5)
	c.Inc()
	for i := 0; i < 2*counterShards; i++ {
		c.Handle().Add(10)
	}
	if got := c.Value(); got != 6+20*int64(counterShards) {
		t.Fatalf("counter value = %d", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not interned")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge not interned")
	}
	if r.Histogram("h", 3, 20) != r.Histogram("h", 0, 5) {
		t.Fatal("histogram not interned")
	}
}

func TestRegistryMergeSums(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only_b").Add(7)
	a.Gauge("g").Set(10)
	b.Gauge("g").Set(20)
	a.Histogram("h", 0, 10).Observe(2)
	b.Histogram("h", 0, 10).Observe(2)
	b.Histogram("h", 0, 10).Observe(512)

	a.Merge(b)
	if got := a.Counter("c").Value(); got != 7 {
		t.Fatalf("merged counter = %d", got)
	}
	if got := a.Counter("only_b").Value(); got != 7 {
		t.Fatalf("merged new counter = %d", got)
	}
	if got := a.Gauge("g").Value(); got != 30 {
		t.Fatalf("merged gauge = %d", got)
	}
	hv := a.Histogram("h", 0, 10).snapshotValue()
	if hv.Total != 3 {
		t.Fatalf("merged histogram total = %v", hv.Total)
	}
	a.Merge(nil) // no-op
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []string) Snapshot {
		r := NewRegistry()
		for i, name := range order {
			r.Counter(name).Add(int64(i) + 1)
			r.Gauge("g_" + name).Set(int64(i))
		}
		r.Histogram("hz", 0, 8).Observe(4)
		r.Histogram("ha", 0, 8).Observe(8)
		return r.Snapshot("arm", 42)
	}
	s1 := build([]string{"b", "a", "c"})
	s2 := build([]string{"c", "b", "a"})
	// Same metrics registered in different orders with different values;
	// normalize values to compare ordering only.
	if len(s1.Counters) != 3 || s1.Counters[0].Name != "a" || s1.Counters[2].Name != "c" {
		t.Fatalf("counters not sorted: %+v", s1.Counters)
	}
	if s1.Histograms[0].Name != "ha" || s1.Histograms[1].Name != "hz" {
		t.Fatalf("histograms not sorted: %+v", s1.Histograms)
	}
	names := func(s Snapshot) []string {
		var out []string
		for _, m := range s.Counters {
			out = append(out, m.Name)
		}
		for _, m := range s.Gauges {
			out = append(out, m.Name)
		}
		return out
	}
	if !reflect.DeepEqual(names(s1), names(s2)) {
		t.Fatalf("snapshot order depends on registration order: %v vs %v", names(s1), names(s2))
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{NowNs: int64(i), Kind: EvMmap})
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events", len(events))
	}
	for i, e := range events {
		if e.NowNs != int64(6+i) {
			t.Fatalf("event %d has NowNs %d, want oldest-first 6..9", i, e.NowNs)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total/dropped = %d/%d", tr.Total(), tr.Dropped())
	}
}

// Dump must capture events, total and dropped in one consistent view
// (the /tracez and JSON-export loss counters, satellite of the
// profiling PR).
func TestTracerDump(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{NowNs: int64(i), Kind: EvMmap})
	}
	d := tr.Dump()
	if d.Total != 10 || d.Dropped != 6 || len(d.Events) != 4 {
		t.Fatalf("dump = total %d dropped %d retained %d", d.Total, d.Dropped, len(d.Events))
	}
	if d.Events[0].NowNs != 6 || d.Events[3].NowNs != 9 {
		t.Fatalf("dump not oldest-first: %+v", d.Events)
	}
	var nilTr *Tracer
	if d := nilTr.Dump(); d.Total != 0 || d.Dropped != 0 || d.Events != nil {
		t.Fatalf("nil tracer dump = %+v", d)
	}
}

func TestTracerDisabled(t *testing.T) {
	tr := NewTracer(0)
	if tr != nil {
		t.Fatal("capacity 0 should disable tracing")
	}
	tr.Record(Event{}) // nil-safe
	if tr.Events() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors should be zero")
	}
}

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	s.Event(EvPerCPUMiss, 1, 2)
	s.EventAdd(EvTransferPlunder, 5, 0, 0)
	s.SetGaugeFill(nil)
	s.FlushGauges()
	s.MaybeSample(100)
	if s.Registry() != nil || s.Tracer() != nil || s.Samples() != nil {
		t.Fatal("nil sink accessors should be nil")
	}
	if snap := s.Snapshot("x", 1); snap.NowNs != 0 {
		t.Fatal("nil sink snapshot should be zero")
	}
	if NewSink(Config{}, nil) != nil {
		t.Fatal("disabled config should produce a nil sink")
	}
}

func TestSinkEventsFeedCountersAndTrace(t *testing.T) {
	now := int64(7)
	s := NewSink(Config{Enabled: true, TraceCapacity: 16}, func() int64 { return now })
	s.Event(EvPerCPUMiss, 3, 12)
	s.Event(EvPerCPUMiss, 4, 12)
	s.EventAdd(EvTransferPlunder, 9, 9, 0)
	if got := s.Registry().Counter(EvPerCPUMiss.MetricName()).Value(); got != 2 {
		t.Fatalf("miss counter = %d", got)
	}
	if got := s.Registry().Counter(EvTransferPlunder.MetricName()).Value(); got != 9 {
		t.Fatalf("plunder counter = %d", got)
	}
	events := s.Tracer().Events()
	if len(events) != 3 {
		t.Fatalf("traced %d events", len(events))
	}
	if events[0].NowNs != 7 || events[0].Kind != EvPerCPUMiss || events[0].A != 3 {
		t.Fatalf("bad first event %+v", events[0])
	}
}

func TestSamplerCadence(t *testing.T) {
	s := NewSink(Config{Enabled: true, SampleEveryNs: 100}, func() int64 { return 0 })
	c := s.Registry().Counter("work_total")
	s.MaybeSample(50) // before first deadline
	c.Add(1)
	s.MaybeSample(100) // fires
	c.Add(1)
	s.MaybeSample(120) // deadline now 200
	s.MaybeSample(450) // coarse tick jumps several periods: one sample
	samples := s.Samples()
	if len(samples) != 2 {
		t.Fatalf("got %d samples, want 2", len(samples))
	}
	if samples[0].NowNs != 100 || samples[1].NowNs != 450 {
		t.Fatalf("sample times = %d, %d", samples[0].NowNs, samples[1].NowNs)
	}
	find := func(s Snapshot, name string) int64 {
		for _, m := range s.Counters {
			if m.Name == name {
				return m.Value
			}
		}
		return -1
	}
	if find(samples[0], "work_total") != 1 || find(samples[1], "work_total") != 2 {
		t.Fatalf("sample values = %d, %d", find(samples[0], "work_total"), find(samples[1], "work_total"))
	}
}

func TestEventKindNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for k := EventKind(0); k < numEventKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has no name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate kind name %q", name)
		}
		seen[name] = true
	}
}

func TestSnapshotLogHistogramQuantiles(t *testing.T) {
	s := NewSink(DefaultConfig(), nil)
	h := s.Registry().Histogram("alloc_size_bytes", 3, 20)
	for i := 0; i < 100; i++ {
		h.Observe(64)
	}
	snap := s.Snapshot("", 0)
	if len(snap.Histograms) != 1 {
		t.Fatalf("histograms = %+v", snap.Histograms)
	}
	hv := snap.Histograms[0]
	if hv.Total != 100 || hv.P50 < 64 || hv.P50 > 128 {
		t.Fatalf("histogram snapshot = %+v", hv)
	}
	if len(hv.Buckets) != 1 || hv.Buckets[0].Lo != 64 || hv.Buckets[0].Hi != 128 {
		t.Fatalf("buckets = %+v", hv.Buckets)
	}
}
