package telemetry

import (
	"context"
	"testing"

	"wsmalloc/internal/sched"
)

// TestRegistryConcurrentViaSched hammers one registry from the same
// worker pool the fleet fans machines out over. Under `go test -race`
// (scripts/verify.sh) this is the data-race gate for the telemetry hot
// paths: sharded counter handles, gauge stores, histogram observes,
// tracer records, get-or-create lookups, and concurrent snapshots.
func TestRegistryConcurrentViaSched(t *testing.T) {
	const (
		tasks   = 64
		perTask = 1000
	)
	r := NewRegistry()
	tr := NewTracer(256)
	shared := r.Counter("shared_total")
	err := sched.Map(context.Background(), tasks, 8, func(i int) error {
		h := shared.Handle()
		g := r.Gauge("last_task")
		hist := r.Histogram("sizes", 3, 20)
		for k := 0; k < perTask; k++ {
			h.Inc()
			g.Set(int64(i))
			hist.Observe(float64(8 + (i+k)%1024))
			tr.Record(Event{NowNs: int64(k), Kind: EvPerCPUMiss, A: int64(i)})
			// Interleave get-or-create against a rotating name set with
			// snapshotting so map growth races would be caught.
			r.Counter([]string{"a_total", "b_total", "c_total"}[k%3]).Inc()
			if k%256 == 0 {
				_ = r.Snapshot("race", int64(k))
				_ = tr.Events()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := shared.Value(); got != tasks*perTask {
		t.Fatalf("shared counter = %d, want %d", got, tasks*perTask)
	}
	var abc int64
	for _, name := range []string{"a_total", "b_total", "c_total"} {
		abc += r.Counter(name).Value()
	}
	if abc != tasks*perTask {
		t.Fatalf("rotating counters sum = %d, want %d", abc, tasks*perTask)
	}
	if got := r.Histogram("sizes", 3, 20).snapshotValue().Total; got != tasks*perTask {
		t.Fatalf("histogram total = %v", got)
	}
	if tr.Total() != tasks*perTask {
		t.Fatalf("tracer total = %d", tr.Total())
	}
}

// TestSinkConcurrentEvents drives full sink Event paths (counter +
// trace + sampler) from parallel workers.
func TestSinkConcurrentEvents(t *testing.T) {
	s := NewSink(Config{Enabled: true, TraceCapacity: 128, SampleEveryNs: 10}, func() int64 { return 1 })
	err := sched.Map(context.Background(), 32, 8, func(i int) error {
		for k := 0; k < 500; k++ {
			s.Event(EvTransferHit, int64(i), int64(k))
			s.EventAdd(EvTransferPlunder, 2, int64(i), 0)
			s.MaybeSample(int64(k))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Registry().Counter(EvTransferHit.MetricName()).Value(); got != 32*500 {
		t.Fatalf("hit counter = %d", got)
	}
	if got := s.Registry().Counter(EvTransferPlunder.MetricName()).Value(); got != 2*32*500 {
		t.Fatalf("plunder counter = %d", got)
	}
}
