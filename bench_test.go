// Benchmarks regenerating every table and figure in the paper's
// evaluation. Each BenchmarkFigXX / BenchmarkTableX runs the matching
// experiment from internal/experiments at a scale set by WSMALLOC_SCALE
// (smoke|quick|full, default quick) and reports headline numbers as
// custom benchmark metrics. `go test -bench=. -benchmem` therefore
// reproduces the paper end to end; cmd/experiments prints the full rows.
package wsmalloc_test

import (
	"os"
	"testing"

	"wsmalloc"
)

func benchScale() wsmalloc.Scale {
	switch os.Getenv("WSMALLOC_SCALE") {
	case "full":
		return wsmalloc.ScaleFull
	case "smoke":
		return wsmalloc.ScaleSmoke
	default:
		return wsmalloc.ScaleQuick
	}
}

// benchExperiment runs one named experiment per benchmark iteration.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	runner, ok := wsmalloc.Experiment(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	scale := benchScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := runner.Run(uint64(i)+1, scale)
		if len(rep.Lines) == 0 {
			b.Fatalf("experiment %s produced no output", name)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + rep.String())
		}
	}
}

func BenchmarkFig03BinaryCDF(b *testing.B)            { benchExperiment(b, "fig3") }
func BenchmarkFig04TierLatency(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig05MallocCycles(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig06Breakdowns(b *testing.B)           { benchExperiment(b, "fig6") }
func BenchmarkFig07ObjectCDF(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFig08Lifetime(b *testing.B)             { benchExperiment(b, "fig8") }
func BenchmarkFig09PerCPU(b *testing.B)               { benchExperiment(b, "fig9") }
func BenchmarkFig10HeterogeneousCache(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11NUCALatency(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12NUCAStructure(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkTable1NUCATransferCache(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig13SpanReturn(b *testing.B)           { benchExperiment(b, "fig13") }
func BenchmarkFig14SpanPrioritization(b *testing.B)   { benchExperiment(b, "fig14") }
func BenchmarkFig15PageheapBreakdown(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkFig16SpanCapacity(b *testing.B)         { benchExperiment(b, "fig16") }
func BenchmarkTable2LifetimeFiller(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig17HugepageCoverage(b *testing.B)     { benchExperiment(b, "fig17") }
func BenchmarkCombinedRollout(b *testing.B)           { benchExperiment(b, "combined") }
func BenchmarkAblationPriorityLists(b *testing.B)     { benchExperiment(b, "ablation-l") }
func BenchmarkAblationCapacityThreshold(b *testing.B) { benchExperiment(b, "ablation-c") }
func BenchmarkAblationPerCPUCapacity(b *testing.B)    { benchExperiment(b, "ablation-capacity") }

// BenchmarkMallocFastPath measures the simulator's own throughput on the
// allocator fast path (engineering metric, not a paper figure).
func BenchmarkMallocFastPath(b *testing.B) {
	alloc := wsmalloc.NewAllocator(wsmalloc.Optimized(), wsmalloc.DefaultPlatform())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr, _ := alloc.Malloc(64, 0)
		alloc.Free(addr, 64, 0)
	}
}

// BenchmarkWorkloadDriver measures end-to-end simulation speed.
func BenchmarkWorkloadDriver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := wsmalloc.DefaultRunOptions(uint64(i) + 1)
		opts.Duration = 10_000_000 // 10ms virtual
		res := wsmalloc.RunWorkloadOptions(wsmalloc.FleetMix(), wsmalloc.Baseline(), opts)
		if res.Ops == 0 {
			b.Fatal("no ops")
		}
	}
}
