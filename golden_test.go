package wsmalloc_test

// Golden bit-identity regression suite for the hot-path overhaul: the
// canonical exports (Prometheus metricsz, heapz, pageheapz, designspace
// CSV) for 3 seeds x 2 design points are captured into testdata/golden/
// BEFORE any hot-path optimization, and TestHotPathGoldenEquivalence
// fails if a single byte of any export changes afterwards.
//
// TestFastPathMatchesSlowPath is the differential half of the net: it
// re-runs the same scenarios with every tier policy wrapped in a
// delegating adapter whose concrete type the monomorphized fast path
// cannot recognize, forcing the dynamic interface-dispatch path, and
// requires the exports to stay byte-identical to the fast path's.
//
// Regenerate goldens (only when an intentional behaviour change lands):
//
//	go test -run TestHotPathGoldenEquivalence -update ./...

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"wsmalloc"
	"wsmalloc/internal/centralfreelist"
	"wsmalloc/internal/pageheap"
	"wsmalloc/internal/percpu"
	"wsmalloc/internal/span"
	"wsmalloc/internal/transfercache"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden files")

var goldenSeeds = []uint64{1, 2, 3}

// goldenDesigns are the two design points the suite pins down: the
// all-legacy baseline and the paper's full redesign.
func goldenDesigns(t testing.TB) []struct {
	name   string
	point  wsmalloc.DesignPoint
	config wsmalloc.Config
} {
	baseCfg, err := wsmalloc.ConfigForDesign(wsmalloc.BaselineDesign())
	if err != nil {
		t.Fatalf("baseline config: %v", err)
	}
	optCfg, err := wsmalloc.ConfigForDesign(wsmalloc.OptimizedDesign())
	if err != nil {
		t.Fatalf("optimized config: %v", err)
	}
	return []struct {
		name   string
		point  wsmalloc.DesignPoint
		config wsmalloc.Config
	}{
		{"baseline", wsmalloc.BaselineDesign(), baseCfg},
		{"optimized", wsmalloc.OptimizedDesign(), optCfg},
	}
}

const (
	goldenFleetMachines   = 48
	goldenFleetDurationNs = 12_000_000 // 12 ms virtual per machine run
	goldenMachineDuration = 20_000_000 // 20 ms single-machine run
)

// fleetExports runs a small telemetry+heapprof-instrumented fleet A/B
// (control = baseline, experiment = the design under test) and renders
// the two canonical export documents.
func fleetExports(t testing.TB, seed uint64, control, experiment wsmalloc.Config,
	controlDesign, experimentDesign string) (prom, heapz []byte) {
	t.Helper()
	f := wsmalloc.NewFleet(goldenFleetMachines, seed)
	opts := wsmalloc.DefaultABOptions()
	opts.SampleFraction = 0.08
	opts.MinMachines = 3
	opts.DurationNs = goldenFleetDurationNs
	opts.Workers = 1
	opts.Telemetry = wsmalloc.DefaultTelemetryConfig()
	opts.ControlDesign = controlDesign
	opts.ExperimentDesign = experimentDesign
	opts.HeapProfile = wsmalloc.DefaultHeapProfileConfig()
	opts.HeapProfile.Seed = seed

	res := f.ABTest(control, experiment, opts)
	if res.Telemetry == nil || res.HeapProfiles == nil {
		t.Fatal("fleet A/B returned no telemetry or heap profiles")
	}

	var promBuf bytes.Buffer
	if err := wsmalloc.WriteTelemetryPrometheus(&promBuf, res.Telemetry.Snapshots(opts.DurationNs)...); err != nil {
		t.Fatalf("prometheus export: %v", err)
	}
	var heapBuf bytes.Buffer
	profiles := append(append([]wsmalloc.HeapProfile{}, res.HeapProfiles.Control...),
		res.HeapProfiles.Experiment...)
	if err := wsmalloc.WriteHeapProfiles(&heapBuf, profiles...); err != nil {
		t.Fatalf("heapz export: %v", err)
	}
	return promBuf.Bytes(), heapBuf.Bytes()
}

// pageheapzExport runs one Monarch machine on the given config and
// renders the /pageheapz fragmentation document.
func pageheapzExport(t testing.TB, seed uint64, cfg wsmalloc.Config) []byte {
	t.Helper()
	alloc := wsmalloc.NewAllocator(cfg, wsmalloc.DefaultPlatform())
	opts := wsmalloc.DefaultRunOptions(seed)
	opts.Duration = goldenMachineDuration
	res := wsmalloc.RunWorkloadOn(wsmalloc.Monarch(), alloc, opts)
	if res.Ops == 0 {
		t.Fatal("workload run produced no operations")
	}
	var buf bytes.Buffer
	if err := wsmalloc.WritePageHeapZ(&buf, alloc.PageHeapZ()); err != nil {
		t.Fatalf("pageheapz export: %v", err)
	}
	return buf.Bytes()
}

// designspaceExport sweeps both golden design points through the
// designspace experiment at smoke scale and returns the CSV leaderboard.
func designspaceExport(t testing.TB, seed uint64) []byte {
	t.Helper()
	base := filepath.Join(t.TempDir(), "ds")
	wsmalloc.SetDesignSpace([]wsmalloc.DesignPoint{
		wsmalloc.BaselineDesign(), wsmalloc.OptimizedDesign(),
	}, base)
	defer wsmalloc.SetDesignSpace(nil, "")
	if _, err := wsmalloc.RunExperiments([]string{"designspace"}, seed, wsmalloc.ScaleSmoke); err != nil {
		t.Fatalf("designspace run: %v", err)
	}
	csv, err := os.ReadFile(base + ".csv")
	if err != nil {
		t.Fatalf("designspace CSV: %v", err)
	}
	return csv
}

func goldenPath(name string) string { return filepath.Join("testdata", "golden", name) }

// checkGolden compares got against the committed golden (or rewrites it
// under -update).
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to capture): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: export differs from golden (%d bytes got, %d want); first divergence at byte %d",
			path, len(got), len(want), firstDiff(got, want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestHotPathGoldenEquivalence is the bit-identity gate: every canonical
// export must match the pre-optimization goldens byte for byte.
func TestHotPathGoldenEquivalence(t *testing.T) {
	designs := goldenDesigns(t)
	baseline := designs[0]
	for _, seed := range goldenSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			for _, d := range designs {
				d := d
				t.Run(d.name, func(t *testing.T) {
					prom, heapz := fleetExports(t, seed, baseline.config, d.config,
						baseline.point.String(), d.point.String())
					checkGolden(t, fmt.Sprintf("seed%d_%s.prom", seed, d.name), prom)
					checkGolden(t, fmt.Sprintf("seed%d_%s.heapz", seed, d.name), heapz)
					checkGolden(t, fmt.Sprintf("seed%d_%s.pageheapz", seed, d.name),
						pageheapzExport(t, seed, d.config))
				})
			}
			t.Run("designspace", func(t *testing.T) {
				checkGolden(t, fmt.Sprintf("seed%d_designspace.csv", seed),
					designspaceExport(t, seed))
			})
		})
	}
}

// --- differential fast/slow-path test -------------------------------
//
// The monomorphized fast path engages only when a tier's resolved policy
// is one of the built-in concrete types. These adapters delegate to the
// built-ins but have distinct concrete types, so setting them as explicit
// policies forces the interface-dispatch slow path with identical
// behaviour.

type slowResizer struct{ inner percpu.Resizer }

func (s slowResizer) Resize(c *percpu.Caches) { s.inner.Resize(c) }

type slowPlacement struct{ inner transfercache.Placement }

func (s slowPlacement) UsesDomains() bool { return s.inner.UsesDomains() }
func (s slowPlacement) AllocFrom(t *transfercache.TransferCaches, class, domain int) int {
	return s.inner.AllocFrom(t, class, domain)
}
func (s slowPlacement) FreeTo(t *transfercache.TransferCaches, class, domain int) int {
	return s.inner.FreeTo(t, class, domain)
}
func (s slowPlacement) FreeOverflow(t *transfercache.TransferCaches, class, domain int) int {
	return s.inner.FreeOverflow(t, class, domain)
}

type slowSelector struct{ inner centralfreelist.SpanSelector }

func (s slowSelector) Lists() int { return s.inner.Lists() }
func (s slowSelector) ListFor(numLists, live int) int {
	return s.inner.ListFor(numLists, live)
}
func (s slowSelector) Pick(l *centralfreelist.List) (*span.Span, int) { return s.inner.Pick(l) }

type slowClassifier struct{ inner pageheap.LifetimeClassifier }

func (s slowClassifier) Classify(classIndex, objectsPerSpan int, feed pageheap.LifetimeFeedback) pageheap.Lifetime {
	return s.inner.Classify(classIndex, objectsPerSpan, feed)
}

// slowConfig rebuilds cfg with every tier's effective policy wrapped in a
// delegating adapter, pinning the allocator to dynamic dispatch.
func slowConfig(cfg wsmalloc.Config) wsmalloc.Config {
	// percpu: mirror resolveResizer. A static front end resolves to no
	// resizer at all; there is nothing to wrap (or monomorphize).
	if cfg.PerCPU.Resizer != nil {
		cfg.PerCPU.Resizer = slowResizer{cfg.PerCPU.Resizer}
	} else if cfg.PerCPU.Heterogeneous {
		cfg.PerCPU.Resizer = slowResizer{percpu.StealingResizer{}}
	}

	// transfercache: mirror resolvePlacement.
	if cfg.Transfer.Placement != nil {
		cfg.Transfer.Placement = slowPlacement{cfg.Transfer.Placement}
	} else if cfg.Transfer.NUCAAware {
		cfg.Transfer.Placement = slowPlacement{transfercache.NUCAPlacement{}}
	} else {
		cfg.Transfer.Placement = slowPlacement{transfercache.CentralizedPlacement{}}
	}

	// centralfreelist: mirror resolveSelector.
	if cfg.CFL.Selector != nil {
		cfg.CFL.Selector = slowSelector{cfg.CFL.Selector}
	} else if cfg.CFL.Prioritize {
		cfg.CFL.Selector = slowSelector{centralfreelist.PrioritizedSelector{NumLists: cfg.CFL.NumLists}}
	} else {
		cfg.CFL.Selector = slowSelector{centralfreelist.LegacySelector{}}
	}

	// classifier: mirror centralfreelist.New's default.
	if cfg.CFL.Classifier != nil {
		cfg.CFL.Classifier = slowClassifier{cfg.CFL.Classifier}
	} else {
		cfg.CFL.Classifier = slowClassifier{pageheap.CapacityClassifier{Threshold: cfg.CFL.SpanLifetimeThreshold}}
	}
	return cfg
}

// TestFastPathMatchesSlowPath runs the monomorphized default-policy path
// and the forced interface-dispatch path side by side on identical seeds
// and requires byte-identical canonical exports.
func TestFastPathMatchesSlowPath(t *testing.T) {
	designs := goldenDesigns(t)
	baseline := designs[0]
	for _, seed := range goldenSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			for _, d := range designs {
				d := d
				t.Run(d.name, func(t *testing.T) {
					fastProm, fastHeapz := fleetExports(t, seed, baseline.config, d.config,
						baseline.point.String(), d.point.String())
					slowProm, slowHeapz := fleetExports(t, seed, slowConfig(baseline.config), slowConfig(d.config),
						baseline.point.String(), d.point.String())
					if !bytes.Equal(fastProm, slowProm) {
						t.Errorf("prometheus export: fast path differs from slow path at byte %d",
							firstDiff(fastProm, slowProm))
					}
					if !bytes.Equal(fastHeapz, slowHeapz) {
						t.Errorf("heapz export: fast path differs from slow path at byte %d",
							firstDiff(fastHeapz, slowHeapz))
					}

					fastZ := pageheapzExport(t, seed, d.config)
					slowZ := pageheapzExport(t, seed, slowConfig(d.config))
					if !bytes.Equal(fastZ, slowZ) {
						t.Errorf("pageheapz export: fast path differs from slow path at byte %d",
							firstDiff(fastZ, slowZ))
					}
				})
			}
		})
	}
}
